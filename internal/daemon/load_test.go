package daemon

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mobilegossip"
	"mobilegossip/client"
)

// TestDaemonLoad is the load-test CI job's body (make load-test): a few
// hundred concurrent sessions pushed through the full service loop —
// create → partial run → eviction under a low idle timeout and a
// MaxLive cap far below the session count → transparent revive → finish
// — with three hard assertions:
//
//   - zero lost or corrupted sessions: every session finishes solved,
//     with results equal to its seed's local reference run;
//   - eviction really happened (the cap and janitor were not idle);
//   - a throughput floor, so scheduler collapse (livelock, convoy)
//     fails the job rather than just slowing it.
//
// Skipped unless MOBILEGOSSIP_LOADTEST=1 so tier-1 stays fast. With
// GOSSIPD_BIN set it drives a real gossipd process over TCP; otherwise
// an in-process daemon behind the same client bindings.
func TestDaemonLoad(t *testing.T) {
	if os.Getenv("MOBILEGOSSIP_LOADTEST") != "1" {
		t.Skip("load test: set MOBILEGOSSIP_LOADTEST=1 (make load-test)")
	}
	const (
		sessions = 220
		maxLive  = 32
		workers  = 64  // client-side drivers, not daemon workers
		minRate  = 5.0 // sessions fully processed per second, conservative floor
	)

	var c *client.Client
	if bin := os.Getenv("GOSSIPD_BIN"); bin != "" {
		c = startGossipd(t, bin, maxLive)
	} else {
		_, c = newTestDaemon(t, Config{MaxLive: maxLive, IdleTimeout: 40 * time.Millisecond, SliceRounds: 16})
	}
	ctx := context.Background()

	// Local reference results, one per seed class.
	refs := make([]mobilegossip.Result, 8)
	for i := range refs {
		res, err := mobilegossip.Run(localConfig(uint64(9000 + i)))
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		refs[i] = res
	}

	start := time.Now()
	ids := make([]string, sessions)
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	sem := make(chan struct{}, workers)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			info, err := c.Create(ctx, testWire(uint64(9000+i%len(refs))))
			if err != nil {
				errc <- fmt.Errorf("create %d: %w", i, err)
				return
			}
			ids[i] = info.ID
			if _, err := c.Run(ctx, info.ID, 5); err != nil {
				errc <- fmt.Errorf("partial run %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Let the idle timeout and the cap churn sessions to disk.
	time.Sleep(150 * time.Millisecond)
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if !strings.Contains(metrics, "gossipd_evictions_total") || strings.Contains(metrics, "gossipd_evictions_total 0\n") {
		t.Fatalf("no evictions under cap %d with %d sessions:\n%s", maxLive, sessions, firstLines(metrics, 40))
	}

	// Finish every session — reviving most of them from checkpoints —
	// and verify each against its seed's reference.
	errc = make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rr, err := c.Run(ctx, ids[i], 0)
			if err != nil {
				errc <- fmt.Errorf("finish %d (%s): %w", i, ids[i], err)
				return
			}
			ref := refs[i%len(refs)]
			if !rr.Solved || rr.Rounds != ref.Rounds || rr.Connections != ref.Connections ||
				rr.ControlBits != ref.ControlBits || rr.TokensMoved != ref.TokensMoved {
				errc <- fmt.Errorf("session %s corrupted: %+v != reference %+v", ids[i], rr, ref)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// Zero lost sessions: the daemon still holds all of them.
	infos, err := c.List(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(infos) != sessions {
		t.Fatalf("%d sessions listed, want %d", len(infos), sessions)
	}
	for _, info := range infos {
		if !info.Done || !info.Solved {
			t.Fatalf("session %s not finished: %+v", info.ID, info)
		}
	}

	rate := float64(sessions) / elapsed.Seconds()
	t.Logf("load: %d sessions (cap %d) in %v — %.1f sessions/sec", sessions, maxLive, elapsed.Round(time.Millisecond), rate)
	if rate < minRate {
		t.Fatalf("throughput %.1f sessions/sec below the %.1f floor", rate, minRate)
	}
}

// startGossipd launches the real daemon binary on a free port and
// returns a client bound to it.
func startGossipd(t *testing.T, bin string, maxLive int) *client.Client {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-statedir", filepath.Join(dir, "state"),
		"-maxlive", fmt.Sprint(maxLive),
		"-idletimeout", "40ms",
		"-slice", "16",
		"-addrfile", addrFile,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && len(b) > 0 {
			return client.New(strings.TrimSpace(string(b)))
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossipd never wrote %s", addrFile)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
