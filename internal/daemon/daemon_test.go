package daemon

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobilegossip"
	"mobilegossip/client"
	"mobilegossip/internal/events"
)

// testWire is the canonical session request the tests drive: small and
// quick, but dynamic (τ=1 regenerates the topology every round, so churn
// and epoch machinery is exercised) and fully deterministic.
func testWire(seed uint64) client.CreateRequest {
	return client.CreateRequest{
		Algorithm: "sharedbit",
		N:         64,
		K:         8,
		Topology:  client.TopologySpec{Kind: "regular", Degree: 4},
		Tau:       1,
		Seed:      seed,
	}
}

// localConfig is testWire's in-process twin.
func localConfig(seed uint64) mobilegossip.Config {
	return mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit,
		N:         64,
		K:         8,
		Topology:  mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Tau:       1,
		Seed:      seed,
	}
}

// newTestDaemon builds a daemon on a per-test state dir plus an
// httptest server and typed client over it.
func newTestDaemon(t *testing.T, cfg Config) (*Daemon, *client.Client) {
	t.Helper()
	cfg.StateDir = t.TempDir()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Close()
	})
	return d, client.New(srv.URL)
}

// localEventStream runs cfg to completion in-process and returns the
// lossless event JSONL a synchronous subscriber sees — the reference the
// daemon's recorded stream must match byte for byte.
func localEventStream(t *testing.T, cfg mobilegossip.Config) ([]byte, mobilegossip.Result) {
	t.Helper()
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var buf []byte
	sim.Bus().SubscribeSync(events.Filter{}, func(ev events.Event) {
		buf = ev.AppendJSON(buf)
		buf = append(buf, '\n')
	})
	res, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	return buf, res
}

func TestDaemonSessionLifecycle(t *testing.T) {
	_, c := newTestDaemon(t, Config{SliceRounds: 8})
	ctx := context.Background()

	v, err := c.Version(ctx)
	if err != nil {
		t.Fatalf("Version: %v", err)
	}
	if v.API != "v1" || v.CheckpointVersion != mobilegossip.CheckpointVersion || v.EventSchema != events.Schema {
		t.Fatalf("Version = %+v", v)
	}

	info, err := c.Create(ctx, testWire(11))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if info.Status != "idle" || info.Round != 0 || info.N != 64 || info.K != 8 {
		t.Fatalf("created info = %+v", info)
	}

	// Advance 5 rounds, then query state and a token count.
	rr, err := c.Run(ctx, info.ID, 5)
	if err != nil {
		t.Fatalf("Run(5): %v", err)
	}
	if rr.Session.Round != 5 || rr.Canceled {
		t.Fatalf("after Run(5): %+v", rr.Session)
	}
	st, err := c.State(ctx, info.ID)
	if err != nil || st.Round != 5 {
		t.Fatalf("State: %+v, %v", st, err)
	}
	tc, err := c.TokenCount(ctx, info.ID, 0)
	if err != nil || tc.Count < 1 {
		t.Fatalf("TokenCount: %+v, %v", tc, err)
	}

	// Run to completion; the wire result must equal the local run's.
	rr, err = c.Run(ctx, info.ID, 0)
	if err != nil {
		t.Fatalf("Run(0): %v", err)
	}
	want, err := mobilegossip.Run(localConfig(11))
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	if !rr.Solved || rr.Rounds != want.Rounds || rr.Connections != want.Connections ||
		rr.TokensMoved != want.TokensMoved || rr.FinalPotential != want.FinalPotential {
		t.Fatalf("remote result %+v != local %+v", rr, want)
	}
	if !rr.Session.Done || !rr.Session.Solved || rr.Session.Status != "idle" {
		t.Fatalf("final session info = %+v", rr.Session)
	}

	infos, err := c.List(ctx)
	if err != nil || len(infos) != 1 || infos[0].ID != info.ID {
		t.Fatalf("List: %+v, %v", infos, err)
	}
	if err := c.Delete(ctx, info.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.State(ctx, info.ID); err == nil {
		t.Fatal("State after Delete succeeded")
	} else if apiErr := new(client.APIError); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("State after Delete: %v", err)
	}
}

func TestDaemonCheckpointMatchesLocal(t *testing.T) {
	_, c := newTestDaemon(t, Config{})
	ctx := context.Background()
	info, err := c.Create(ctx, testWire(3))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := c.Run(ctx, info.ID, 7); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rc, err := c.Checkpoint(ctx, info.ID)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	remote, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatalf("reading checkpoint: %v", err)
	}

	sim, err := mobilegossip.New(localConfig(3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for sim.Round() < 7 {
		if _, err := sim.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	var local bytes.Buffer
	if err := sim.Checkpoint(&local); err != nil {
		t.Fatalf("local Checkpoint: %v", err)
	}
	if !bytes.Equal(remote, local.Bytes()) {
		t.Fatalf("remote checkpoint (%d bytes) differs from local (%d bytes)", len(remote), local.Len())
	}

	// The downloaded checkpoint resumes into a session that finishes
	// identically to the local one.
	info2, err := c.Resume(ctx, bytes.NewReader(remote), false)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if info2.Round != 7 {
		t.Fatalf("resumed at round %d, want 7", info2.Round)
	}
	rr, err := c.Run(ctx, info2.ID, 0)
	if err != nil {
		t.Fatalf("Run resumed: %v", err)
	}
	want, err := mobilegossip.Run(localConfig(3))
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	if rr.Rounds != want.Rounds || rr.Connections != want.Connections || rr.ControlBits != want.ControlBits {
		t.Fatalf("resumed result %+v != local %+v", rr, want)
	}
}

func TestDaemonRecordedEventsMatchLocal(t *testing.T) {
	_, c := newTestDaemon(t, Config{SliceRounds: 4})
	ctx := context.Background()
	req := testWire(21)
	req.RecordEvents = true
	info, err := c.Create(ctx, req)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := c.Run(ctx, info.ID, 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rc, err := c.Events(ctx, info.ID, client.EventOptions{})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	remote, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatalf("reading events: %v", err)
	}
	local, _ := localEventStream(t, localConfig(21))
	if !bytes.Equal(remote, local) {
		t.Fatalf("recorded stream (%d bytes) differs from local (%d bytes)", len(remote), len(local))
	}

	// Server-side filtering returns exactly the matching original lines.
	rc, err = c.Events(ctx, info.ID, client.EventOptions{Types: []string{"round_completed"}, MinRound: 2, MaxRound: 4})
	if err != nil {
		t.Fatalf("Events filtered: %v", err)
	}
	filtered, _ := io.ReadAll(rc)
	rc.Close()
	lines := strings.Split(strings.TrimSuffix(string(filtered), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("filtered lines = %d, want 3:\n%s", len(lines), filtered)
	}
	for _, ln := range lines {
		if !strings.Contains(ln, `"type":"round_completed"`) {
			t.Fatalf("filtered line of wrong type: %s", ln)
		}
		if !strings.Contains(string(local), ln) {
			t.Fatalf("filtered line not verbatim from the stream: %s", ln)
		}
	}
}

// TestDaemonEvictionTransparency is the eviction contract test: a
// session evicted (and revived) mid-run must produce the identical
// result, the identical downloadable checkpoint, and the identical
// recorded event stream as a never-evicted run.
func TestDaemonEvictionTransparency(t *testing.T) {
	d, c := newTestDaemon(t, Config{SliceRounds: 4})
	ctx := context.Background()
	req := testWire(42)
	req.RecordEvents = true
	info, err := c.Create(ctx, req)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := c.Run(ctx, info.ID, 6); err != nil {
		t.Fatalf("Run(6): %v", err)
	}

	s, err := d.get(info.ID)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !d.tryEvict(s) {
		t.Fatal("tryEvict failed on an idle session")
	}
	st, err := c.State(ctx, info.ID)
	if err != nil || st.Status != "evicted" || st.Round != 6 {
		t.Fatalf("evicted state = %+v, %v", st, err)
	}
	if _, err := os.Stat(d.ckptPath(info.ID)); err != nil {
		t.Fatalf("eviction checkpoint missing: %v", err)
	}

	// The next run revives transparently and finishes the run.
	rr, err := c.Run(ctx, info.ID, 0)
	if err != nil {
		t.Fatalf("Run after evict: %v", err)
	}
	if rr.Session.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", rr.Session.Evictions)
	}
	localBytes, want := localEventStream(t, localConfig(42))
	if !rr.Solved || rr.Rounds != want.Rounds || rr.Connections != want.Connections ||
		rr.ControlBits != want.ControlBits || rr.TokensMoved != want.TokensMoved {
		t.Fatalf("evicted-run result %+v != local %+v", rr, want)
	}

	rc, err := c.Events(ctx, info.ID, client.EventOptions{})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	remote, _ := io.ReadAll(rc)
	rc.Close()
	if !bytes.Equal(remote, localBytes) {
		t.Fatalf("recorded stream after evict/revive (%d bytes) differs from uninterrupted local (%d bytes)",
			len(remote), len(localBytes))
	}
}

// TestDaemonMaxLiveCap drives more sessions than MaxLive and checks the
// daemon holds the resident count at the cap by evicting idle sessions —
// with none of them lost or corrupted.
func TestDaemonMaxLiveCap(t *testing.T) {
	const sessions = 8
	d, c := newTestDaemon(t, Config{MaxLive: 2, SliceRounds: 8})
	ctx := context.Background()
	ids := make([]string, 0, sessions)
	for i := 0; i < sessions; i++ {
		info, err := c.Create(ctx, testWire(uint64(100+i)))
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		if _, err := c.Run(ctx, info.ID, 3); err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
		ids = append(ids, info.ID)
	}
	if live := d.live.Load(); live > 2 {
		t.Fatalf("resident sessions = %d, cap 2", live)
	}
	if d.evictsTotal.Load() == 0 {
		t.Fatal("no evictions despite cap pressure")
	}
	// Every session — resident or evicted — finishes correctly.
	for i, id := range ids {
		rr, err := c.Run(ctx, id, 0)
		if err != nil {
			t.Fatalf("finishing %s: %v", id, err)
		}
		local, err := mobilegossip.Run(localConfig(uint64(100 + i)))
		if err != nil {
			t.Fatalf("local run %d: %v", i, err)
		}
		if !rr.Solved || rr.Rounds != local.Rounds || rr.Connections != local.Connections {
			t.Fatalf("session %s result %+v != local %+v", id, rr, local)
		}
	}
}

func TestDaemonIdleTimeoutJanitor(t *testing.T) {
	d, c := newTestDaemon(t, Config{IdleTimeout: 30 * time.Millisecond})
	ctx := context.Background()
	info, err := c.Create(ctx, testWire(5))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := c.Run(ctx, info.ID, 2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		st, err := c.State(ctx, info.ID)
		if err != nil {
			t.Fatalf("State: %v", err)
		}
		if st.Status == "evicted" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never evicted the idle session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d.evictsTotal.Load() == 0 {
		t.Fatal("evictions counter still zero")
	}
	// Revival on touch.
	if _, err := c.TokenCount(ctx, info.ID, 1); err != nil {
		t.Fatalf("TokenCount after eviction: %v", err)
	}
	if d.revivals.Load() == 0 {
		t.Fatal("revivals counter still zero")
	}
}

func TestDaemonRunCancel(t *testing.T) {
	_, c := newTestDaemon(t, Config{SliceRounds: 1})
	ctx := context.Background()
	req := testWire(9)
	req.MaxRounds = 1 << 20
	info, err := c.Create(ctx, req)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Cancel a run mid-flight from a second goroutine.
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = c.Cancel(context.Background(), info.ID)
	}()
	rr, err := c.Run(ctx, info.ID, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rr.Canceled && !rr.Session.Done {
		t.Fatalf("run neither canceled nor done: %+v", rr)
	}
	// The session stays fully usable after a cancel.
	if _, err := c.Run(ctx, info.ID, 1); err != nil {
		t.Fatalf("Run after cancel: %v", err)
	}
}

func TestDaemonFollowEvents(t *testing.T) {
	_, c := newTestDaemon(t, Config{SliceRounds: 8})
	ctx := context.Background()
	info, err := c.Create(ctx, testWire(13))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Attach the follower before any stepping: it must see the whole
	// stream live, ending with session_end, without recording enabled.
	rc, err := c.Events(ctx, info.ID, client.EventOptions{Follow: true})
	if err != nil {
		t.Fatalf("Events follow: %v", err)
	}
	defer rc.Close()
	done := make(chan error, 1)
	var streamed []byte
	go func() {
		b, err := io.ReadAll(rc)
		streamed = b
		done <- err
	}()
	if _, err := c.Run(ctx, info.ID, 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follow stream: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow stream did not terminate at session end")
	}
	local, _ := localEventStream(t, localConfig(13))
	if !bytes.Equal(streamed, local) {
		t.Fatalf("followed stream (%d bytes) differs from local (%d bytes)", len(streamed), len(local))
	}
}

func TestDaemonHTTPErrors(t *testing.T) {
	_, c := newTestDaemon(t, Config{})
	ctx := context.Background()

	cases := []struct {
		name   string
		call   func() error
		status int
	}{
		{"unknown algorithm", func() error {
			req := testWire(1)
			req.Algorithm = "quantum"
			_, err := c.Create(ctx, req)
			return err
		}, http.StatusBadRequest},
		{"invalid config", func() error {
			req := testWire(1)
			req.N = 1
			_, err := c.Create(ctx, req)
			return err
		}, http.StatusBadRequest},
		{"missing session", func() error {
			_, err := c.Run(ctx, "s999999", 1)
			return err
		}, http.StatusNotFound},
		{"bad checkpoint upload", func() error {
			_, err := c.Resume(ctx, strings.NewReader("not a checkpoint"), false)
			return err
		}, http.StatusBadRequest},
		{"bad node", func() error {
			info, err := c.Create(ctx, testWire(2))
			if err != nil {
				return err
			}
			_, err = c.TokenCount(ctx, info.ID, 1<<20)
			return err
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		err := tc.call()
		apiErr := new(client.APIError)
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: error %v is not an APIError", tc.name, err)
		}
		if apiErr.Status != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, apiErr.Status, tc.status, apiErr.Message)
		}
	}

	// Unknown JSON fields and trailing garbage are rejected.
	for _, body := range []string{
		`{"algorithm":"sharedbit","n":64,"k":8,"topology":{"kind":"regular"},"fitler":"x"}`,
		`{"algorithm":"sharedbit","n":64,"k":8,"topology":{"kind":"regular"}} extra`,
	} {
		if _, err := decodeCreateRequest([]byte(body)); err == nil {
			t.Fatalf("decodeCreateRequest accepted %q", body)
		}
	}
}

func TestParseEventsQuery(t *testing.T) {
	f, follow, err := parseEventsQuery("filter=round_completed,session_end&minround=2&maxround=9&follow=1")
	if err != nil {
		t.Fatalf("parseEventsQuery: %v", err)
	}
	if len(f.Types) != 2 || f.MinRound != 2 || f.MaxRound != 9 || !follow {
		t.Fatalf("parsed %+v follow=%v", f, follow)
	}
	if _, _, err := parseEventsQuery(""); err != nil {
		t.Fatalf("empty query: %v", err)
	}
	for _, bad := range []string{
		"filter=nonsense_type",
		"minround=-1",
		"minround=abc",
		"minround=9&maxround=2",
		"follow=maybe",
		"fitler=round_completed",
		"%zz",
	} {
		if _, _, err := parseEventsQuery(bad); err == nil {
			t.Fatalf("parseEventsQuery accepted %q", bad)
		}
	}
}

func TestDaemonMetricsExposition(t *testing.T) {
	d, c := newTestDaemon(t, Config{MaxLive: 1})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		info, err := c.Create(ctx, testWire(uint64(i)))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if _, err := c.Run(ctx, info.ID, 2); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		"gossipd_sessions 3",
		"gossipd_sessions_created_total 3",
		"gossipd_evictions_total",
		"gossipd_workers",
		"mobilegossip_rounds_total", // the aggregated per-session collector
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
	if d.evictsTotal.Load() == 0 {
		t.Fatal("cap never evicted")
	}
}

func TestDaemonCloseFailsPendingJobs(t *testing.T) {
	d, c := newTestDaemon(t, Config{})
	ctx := context.Background()
	info, err := c.Create(ctx, testWire(7))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	d.Close()
	if _, err := d.Run(ctx, info.ID, 1); !errors.Is(err, errShuttingDown) {
		t.Fatalf("Run after Close: %v", err)
	}
}

func TestCheckpointFileAtomic(t *testing.T) {
	sim, err := mobilegossip.New(localConfig(17))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ckpt")
	if err := sim.CheckpointFile(path); err != nil {
		t.Fatalf("CheckpointFile: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	revived, err := mobilegossip.ResumeFile(path)
	if err != nil {
		t.Fatalf("ResumeFile: %v", err)
	}
	if revived.Round() != sim.Round() {
		t.Fatalf("revived at round %d, want %d", revived.Round(), sim.Round())
	}
	if _, err := mobilegossip.ResumeFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("ResumeFile on a missing path succeeded")
	}
}
