package daemon

import (
	"context"
	"sync"
	"sync/atomic"
)

// targetUnset marks a job whose absolute target round has not been
// resolved yet (resolved against the session's live round at the job's
// first slice, so concurrent jobs compose sanely).
const targetUnset = -2

// targetDone means "run to completion" (objective or MaxRounds).
const targetDone = -1

// runJob is one client run request traveling through the scheduler:
// advance the session by rounds (<= 0: to completion), in slices.
type runJob struct {
	s      *session
	rounds int // the request's relative round count
	target int // absolute target round; targetUnset until first slice

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	res    any // client.RunResult on success
	err    error
}

func (j *runJob) finish(res any, err error) {
	j.s.removeJob(j)
	j.res, j.err = res, err
	close(j.done)
}

// scheduler is the daemon's bounded worker pool: run jobs queue FIFO,
// each worker executes one slice (at most sliceRounds rounds) of the
// front job, and unfinished jobs requeue at the tail. The slice-and-
// requeue discipline is what makes hundreds of concurrent sessions
// progress fairly: a long run cannot monopolize a worker, it just keeps
// taking turns. Pool sizing follows internal/runner's discipline
// (Workers knob, GOMAXPROCS default, see Config.Workers).
type scheduler struct {
	exec func(*runJob) bool // one slice; true = job finished (do not requeue)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*runJob
	closed bool
	wg     sync.WaitGroup

	depth  atomic.Int64 // queued jobs, for the gossipd_queue_depth gauge
	slices atomic.Int64 // executed slices, for gossipd_slices_total
}

func newScheduler(workers int, exec func(*runJob) bool) *scheduler {
	sc := &scheduler{exec: exec}
	sc.cond = sync.NewCond(&sc.mu)
	for i := 0; i < workers; i++ {
		sc.wg.Add(1)
		go sc.worker()
	}
	return sc
}

// submit enqueues j at the tail. After close it fails the job instead.
func (sc *scheduler) submit(j *runJob) {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		j.finish(nil, errShuttingDown)
		return
	}
	sc.queue = append(sc.queue, j)
	sc.depth.Store(int64(len(sc.queue)))
	sc.cond.Signal()
	sc.mu.Unlock()
}

func (sc *scheduler) worker() {
	defer sc.wg.Done()
	for {
		sc.mu.Lock()
		for len(sc.queue) == 0 && !sc.closed {
			sc.cond.Wait()
		}
		if sc.closed {
			sc.mu.Unlock()
			return
		}
		j := sc.queue[0]
		sc.queue = sc.queue[1:]
		sc.depth.Store(int64(len(sc.queue)))
		sc.mu.Unlock()

		sc.slices.Add(1)
		if !sc.exec(j) {
			sc.submit(j)
		}
	}
}

// close stops the workers and fails every still-queued job. Jobs
// mid-slice finish their slice first (wg.Wait).
func (sc *scheduler) close() {
	sc.mu.Lock()
	sc.closed = true
	pending := sc.queue
	sc.queue = nil
	sc.depth.Store(0)
	sc.cond.Broadcast()
	sc.mu.Unlock()
	sc.wg.Wait()
	for _, j := range pending {
		j.finish(nil, errShuttingDown)
	}
}
