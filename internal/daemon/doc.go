// Package daemon is the gossipd service core: it multiplexes many
// concurrent simulation sessions — the stateful Step/Run/Checkpoint
// sessions of the public API — behind an HTTP+JSON surface (the v1 wire
// format defined in the client package), so experiment grids can be
// driven, observed, checkpointed and resumed remotely.
//
// Three mechanisms make one daemon hold far more sessions than one
// process could naively run (DESIGN.md §14):
//
//   - A bounded-worker scheduler executes run requests as round slices:
//     a job steps its session at most sliceRounds rounds, then requeues
//     at the tail, so hundreds of concurrent sessions share the worker
//     pool fairly instead of the first arrivals monopolizing it. The
//     pool sizing reuses internal/runner's discipline (Workers knob,
//     GOMAXPROCS default).
//
//   - Checkpoint-backed eviction serializes idle sessions to disk via
//     the public Checkpoint/Resume machinery (CheckpointFile/ResumeFile)
//     and transparently revives them on the next touch. Eviction is
//     invisible in every observable: results, checkpoint downloads and
//     recorded event streams are byte-identical to a never-evicted run.
//
//   - Per-session event recording and a daemon-wide metrics collector
//     ride the PR 7 event bus: each session's lifecycle stream is
//     recorded losslessly to the state directory (served by the events
//     endpoint, replay and SSE follow), and one events.Collector
//     aggregates every session's meters into /metrics next to the
//     scheduler's own gauges.
package daemon
