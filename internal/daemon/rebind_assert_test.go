package daemon

// Tests for the scenario-facing endpoints: POST /rebind (phased
// timelines switch the topology schedule mid-session) and POST /assert
// (expected-outcome checks evaluated server-side, failing with 409).

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"mobilegossip"
	"mobilegossip/client"
)

func TestRebindMatchesLocal(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 2})
	ctx := context.Background()
	info, err := c.Create(ctx, testWire(21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, info.ID, 10); err != nil {
		t.Fatal(err)
	}
	rebound, err := c.Rebind(ctx, info.ID, client.RebindRequest{
		Topology: client.TopologySpec{Kind: "gnp", P: 0.15},
		Tau:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rebound.Round != 10 {
		t.Fatalf("rebind changed the round: %+v", rebound)
	}
	res, err := c.Run(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The same phase switch in-process must agree exactly.
	sim, err := mobilegossip.New(localConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	for sim.Round() < 10 {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Rebind(mobilegossip.Topology{Kind: mobilegossip.GNP, P: 0.15}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(ctx); err != nil {
		t.Fatal(err)
	}
	want := sim.Result()
	if res.Rounds != want.Rounds || res.FinalPotential != want.FinalPotential ||
		res.Connections != want.Connections || res.Topology != want.Topology {
		t.Fatalf("remote rebind diverged from local:\nremote: %+v\nlocal:  %+v", res, want)
	}
}

// TestRebindSurvivesEviction: an evicted session revives with the
// rebound schedule (the checkpoint carries it), not the create-time one.
func TestRebindSurvivesEviction(t *testing.T) {
	d, c := newTestDaemon(t, Config{Workers: 2})
	ctx := context.Background()
	info, err := c.Create(ctx, testWire(33))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, info.ID, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebind(ctx, info.ID, client.RebindRequest{
		Topology: client.TopologySpec{Kind: "cycle"},
		Tau:      1,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := d.get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !d.tryEvict(s) {
		t.Fatal("tryEvict failed on an idle session")
	}
	res, err := c.Run(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Topology, "cycle") {
		t.Fatalf("revived session lost the rebound schedule: %+v", res)
	}
}

func TestRebindErrors(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 2})
	ctx := context.Background()
	if _, err := c.Rebind(ctx, "nope", client.RebindRequest{
		Topology: client.TopologySpec{Kind: "cycle"},
	}); err == nil {
		t.Fatal("rebind on a missing session should 404")
	}
	info, err := c.Create(ctx, testWire(4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Rebind(ctx, info.ID, client.RebindRequest{
		Topology: client.TopologySpec{Kind: "warp"},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || !strings.Contains(apiErr.Message, "unknown topology") {
		t.Fatalf("bad topology kind should surface as APIError, got %v", err)
	}
}

func TestAssertPassAndFail(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 2})
	ctx := context.Background()
	info, err := c.Create(ctx, testWire(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, info.ID, 0); err != nil {
		t.Fatal(err)
	}
	solved := true
	if err := c.Assert(ctx, info.ID, client.AssertRequest{
		Scenario: "wiretest", Seed: 8,
		Expect: client.ExpectSpec{Solved: &solved},
	}); err != nil {
		t.Fatalf("passing assertion errored: %v", err)
	}

	err = c.Assert(ctx, info.ID, client.AssertRequest{
		Scenario: "wiretest", Seed: 8, Phase: "steady",
		Expect: client.ExpectSpec{SolvedBy: 1},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("failing assertion should be an APIError, got %v", err)
	}
	if apiErr.Status != 409 {
		t.Fatalf("assertion failure status = %d, want 409", apiErr.Status)
	}
	// The failure text is the shared outcome.FormatFailure rendering:
	// scenario, seed, phase, and a diff-style detail line.
	for _, sub := range []string{`"wiretest"`, "seed 8", `phase "steady"`, "solved_by", "expected rounds ≤"} {
		if !strings.Contains(apiErr.Message, sub) {
			t.Errorf("assertion failure %q missing %q", apiErr.Message, sub)
		}
	}
}

func TestAssertValidatesExpectation(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 2})
	ctx := context.Background()
	info, err := c.Create(ctx, testWire(2))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Assert(ctx, info.ID, client.AssertRequest{
		Expect: client.ExpectSpec{SolvedBy: -3},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status == 409 {
		t.Fatalf("invalid expectation should be a 400-class APIError, not an assertion failure: %v", err)
	}
}

// TestAssertChecksDerivedMetrics drives a short run and asserts on the
// churn/coverage numbers the daemon must derive from the live result.
func TestAssertChecksDerivedMetrics(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 2})
	ctx := context.Background()
	// A mobility topology: edge churn is a delta-tracked quantity, so the
	// churn assertion has something to measure.
	info, err := c.Create(ctx, client.CreateRequest{
		Algorithm: "sharedbit", N: 48, K: 4,
		Topology: client.TopologySpec{Kind: "waypoint", Speed: 0.03},
		Tau:      1, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("run did not solve: %+v", res)
	}
	if err := c.Assert(ctx, info.ID, client.AssertRequest{
		Seed: 12,
		Expect: client.ExpectSpec{
			MinCoverage:    1.0,
			MinTokensMoved: 1,
		},
	}); err != nil {
		t.Fatalf("solved run has full coverage; assert errored: %v", err)
	}
	err = c.Assert(ctx, info.ID, client.AssertRequest{
		Seed:   12,
		Expect: client.ExpectSpec{MaxChurnPerRound: 0.001},
	})
	if err == nil {
		t.Fatal("τ=1 run churns every round; max_churn_per_round 0.001 must fail")
	}
	if !strings.Contains(err.Error(), "max_churn_per_round") {
		t.Fatalf("failure should name the assertion, got %v", err)
	}
}

// TestAssertOverHTTPBody pins the raw 409 wire shape scenario runners
// parse: a JSON APIError body.
func TestAssertOverHTTPBody(t *testing.T) {
	d, _ := newTestDaemon(t, Config{Workers: 2})
	info, err := d.Create(testWire(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background(), info.ID, 0); err != nil {
		t.Fatal(err)
	}
	err = d.Assert(info.ID, client.AssertRequest{
		Scenario: "x", Seed: 3,
		Expect: client.ExpectSpec{SolvedBy: 1},
	})
	var af *assertFailure
	if !errors.As(err, &af) {
		t.Fatalf("daemon assert failure should be *assertFailure, got %T", err)
	}
	var buf bytes.Buffer
	writeErr(&fakeResponse{&buf}, err)
	if !bytes.Contains(buf.Bytes(), []byte(`"error"`)) {
		t.Fatalf("409 body should be an APIError JSON object, got %s", buf.Bytes())
	}
}

// fakeResponse adapts a buffer to http.ResponseWriter for writeErr.
type fakeResponse struct{ w *bytes.Buffer }

func (f *fakeResponse) Header() http.Header         { return http.Header{} }
func (f *fakeResponse) Write(p []byte) (int, error) { return f.w.Write(p) }
func (f *fakeResponse) WriteHeader(statusCode int)  {}
