package daemon

import (
	"testing"

	"mobilegossip/client"
)

// The daemon's two wire-decoding surfaces — the session-create JSON body
// and the events endpoint's query string — parse attacker-controlled
// bytes before any validation by the simulator. The invariant under fuzz
// is the usual one for this module's decoders (FuzzResume, FuzzReaderRaw):
// reject or normalize, never panic. Deliberately NOT under fuzz:
// mobilegossip.New on the decoded config — a fuzzer that discovers
// n=1e9 would be "finding" an allocation, not a bug; Config validation
// has its own tests.

func FuzzCreateRequest(f *testing.F) {
	f.Add([]byte(`{"algorithm":"sharedbit","n":64,"k":8,"seed":1,"topology":{"kind":"regular","degree":4}}`))
	f.Add([]byte(`{"algorithm":"crowdedbin","n":256,"k":32,"topology":{"kind":"gnp","p":0.1},"crowdedbin_beta":3}`))
	f.Add([]byte(`{"algorithm":"simsharedbit","n":64,"k":4,"tau":1,"topology":{"kind":"waypoint","speed":0.02,"adversary":"cutrich","adv_budget":100}}`))
	f.Add([]byte(`{"algorithm":"sharedbit","n":128,"k":128,"epsilon":0.75,"topology":{"kind":"doublestar","relabel":"bfs"},"record_events":true}`))
	f.Add([]byte(`{"algorithm":"","topology":{"kind":""}}`))
	f.Add([]byte(`{"algorithm":"sharedbit","unknown_field":1}`))
	f.Add([]byte(`{}trailing`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeCreateRequest(body)
		if err != nil {
			return
		}
		// A decoded request must either resolve to a Config or produce an
		// enum-name error; both without panicking.
		if _, err := configFromWire(req); err != nil {
			return
		}
		// Resolvable requests round-trip their enum names: re-resolving
		// the same wire value is stable.
		if _, err := configFromWire(req); err != nil {
			t.Fatalf("configFromWire flapped on %+v: %v", req, err)
		}
	})
}

func FuzzEventsQuery(f *testing.F) {
	f.Add("filter=round_completed")
	f.Add("filter=round_completed,session_end&minround=2&maxround=40")
	f.Add("follow=1")
	f.Add("follow=true&filter=churn_applied")
	f.Add("minround=0&maxround=0")
	f.Add("filter=")
	f.Add("filter=nope")
	f.Add("minround=-3")
	f.Add("minround=99&maxround=1")
	f.Add("fitler=round_completed")
	f.Add("%zz&&&=&follow")
	f.Fuzz(func(t *testing.T, rawQuery string) {
		filter, follow, err := parseEventsQuery(rawQuery)
		if err != nil {
			return
		}
		// Accepted queries yield an internally consistent filter...
		if filter.MinRound < 0 || filter.MaxRound < 0 {
			t.Fatalf("negative round bound accepted: %+v (query %q)", filter, rawQuery)
		}
		if filter.MinRound > 0 && filter.MaxRound > 0 && filter.MinRound > filter.MaxRound {
			t.Fatalf("inverted round window accepted: %+v (query %q)", filter, rawQuery)
		}
		// ...whose accepted type names reproduce through the client-side
		// query builder and parse identically (the two ends of the wire
		// agree on the dialect).
		names := make([]string, 0, len(filter.Types))
		for _, typ := range filter.Types {
			names = append(names, typ.String())
		}
		opts := client.EventOptions{Types: names, MinRound: filter.MinRound, MaxRound: filter.MaxRound, Follow: follow}
		q := opts.Query()
		if q != "" {
			q = q[1:] // strip "?"
		}
		filter2, follow2, err := parseEventsQuery(q)
		if err != nil {
			t.Fatalf("round-tripped query %q rejected: %v", q, err)
		}
		if follow2 != follow || filter2.MinRound != filter.MinRound || filter2.MaxRound != filter.MaxRound ||
			len(filter2.Types) != len(filter.Types) {
			t.Fatalf("round trip changed the filter: %+v/%v -> %+v/%v (query %q -> %q)",
				filter, follow, filter2, follow2, rawQuery, q)
		}
	})
}
