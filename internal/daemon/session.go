package daemon

import (
	"sync"
	"sync/atomic"
	"time"

	"mobilegossip"
	"mobilegossip/client"
)

// session is one managed simulation: the daemon-side wrapper around a
// *mobilegossip.Simulation that adds the state the service needs — a
// lock serializing all Simulation access, lock-free cached meters for
// state queries, the eviction bookkeeping, and the job set for cancel.
type session struct {
	id string

	// mu serializes every touch of the Simulation: stepping (scheduler
	// slices), checkpoint downloads, token queries, eviction and
	// revival. A Simulation is single-goroutine by contract; this lock
	// is that contract at daemon scale. Holders keep slices short so
	// concurrent requests interleave at round boundaries.
	mu  sync.Mutex
	sim *mobilegossip.Simulation // nil while evicted
	// gone marks a deleted session: jobs and revives fail fast.
	gone bool
	// failed records a model-contract violation: the session stays
	// queryable but cannot be stepped, checkpointed, or evicted.
	failed bool

	// Identity, fixed at create/resume time (the wire echo of the
	// normalized Config).
	algorithm string
	topology  string // the schedule's self-description, e.g. "waypoint(...)τ=1"
	n, k, tau int
	epsilon   float64
	seed      uint64
	// Wall-clock-only knobs to re-apply on revival (deliberately outside
	// the checkpoint stream, like everywhere else in the module).
	engineWorkers int
	profile       bool

	// Cached state, stored at slice boundaries and read lock-free by the
	// state/list endpoints — a state query never waits on a stepping
	// session.
	round     atomic.Int64
	potential atomic.Int64
	done      atomic.Bool
	solved    atomic.Bool
	health    atomic.Pointer[string]
	evicted   atomic.Bool
	evictions atomic.Int64
	lastTouch atomic.Int64 // unix nanos of the last client touch or slice

	// pins blocks eviction while > 0 (event followers hold one).
	pins atomic.Int64

	rec *recorder // lossless event log; nil unless RecordEvents

	// jobs tracks this session's queued and executing run jobs so the
	// cancel endpoint can reach them.
	jmu  sync.Mutex
	jobs map[*runJob]struct{}

	// subCancels detaches the daemon's bus subscriptions (collector,
	// recorder) from the current Simulation's bus on eviction.
	subCancels []func()
}

func (s *session) touch() { s.lastTouch.Store(time.Now().UnixNano()) }

// syncCachedLocked refreshes the lock-free mirror from the live
// Simulation; call with mu held and sim non-nil.
func (s *session) syncCachedLocked() {
	s.round.Store(int64(s.sim.Round()))
	s.potential.Store(int64(s.sim.Potential()))
	done := s.sim.Done()
	s.done.Store(done)
	if done {
		s.solved.Store(s.sim.Result().Solved)
	}
	h := s.sim.Health().String()
	s.health.Store(&h)
}

// addJob / removeJob maintain the cancelable job set.
func (s *session) addJob(j *runJob) {
	s.jmu.Lock()
	if s.jobs == nil {
		s.jobs = make(map[*runJob]struct{})
	}
	s.jobs[j] = struct{}{}
	s.jmu.Unlock()
}

func (s *session) removeJob(j *runJob) {
	s.jmu.Lock()
	delete(s.jobs, j)
	s.jmu.Unlock()
}

// cancelJobs cancels every queued and executing job (the cancel
// endpoint). Jobs observe their context at the next round boundary.
func (s *session) cancelJobs() int {
	s.jmu.Lock()
	n := len(s.jobs)
	for j := range s.jobs {
		j.cancel()
	}
	s.jmu.Unlock()
	return n
}

func (s *session) pendingJobs() int {
	s.jmu.Lock()
	n := len(s.jobs)
	s.jmu.Unlock()
	return n
}

// info renders the wire SessionInfo from the lock-free cache; callable
// at any time, against running and evicted sessions alike.
func (s *session) info() client.SessionInfo {
	status := "idle"
	switch {
	case s.evicted.Load():
		status = "evicted"
	case !s.done.Load() && s.pendingJobs() > 0:
		// A done session never steps again, so queued jobs on it (the one
		// delivering this result included) don't make it "running".
		status = "running"
	}
	health := "unknown"
	if h := s.health.Load(); h != nil {
		health = *h
	}
	var recorded int64
	if s.rec != nil {
		recorded = s.rec.lines.Load()
	}
	return client.SessionInfo{
		ID:             s.id,
		Status:         status,
		Round:          int(s.round.Load()),
		Potential:      int(s.potential.Load()),
		Done:           s.done.Load(),
		Solved:         s.solved.Load(),
		N:              s.n,
		K:              s.k,
		Algorithm:      s.algorithm,
		Topology:       s.topology,
		Tau:            s.tau,
		Epsilon:        s.epsilon,
		Seed:           s.seed,
		Health:         health,
		EventsRecorded: recorded,
		Evictions:      s.evictions.Load(),
	}
}

// runResultLocked renders the wire RunResult from the live Simulation;
// call with mu held and sim non-nil.
func (s *session) runResultLocked(canceled bool) client.RunResult {
	r := s.sim.Result()
	return client.RunResult{
		Session:        s.info(),
		Canceled:       canceled,
		Algorithm:      r.Algorithm.String(),
		Topology:       r.Topology,
		Solved:         r.Solved,
		Rounds:         r.Rounds,
		Connections:    r.Connections,
		Proposals:      r.Proposals,
		ControlBits:    r.ControlBits,
		TokensMoved:    r.TokensMoved,
		EdgesAdded:     r.EdgesAdded,
		EdgesRemoved:   r.EdgesRemoved,
		FinalPotential: r.FinalPotential,
	}
}
