package daemon

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"mobilegossip/client"
)

// TestDaemonConcurrentTraffic is the daemon's race-detector workload
// (run un-shortened by the race-concurrent CI job): sessions are
// created, stepped, evicted (tight cap + janitor), revived, followed and
// deleted while /metrics scrapes, state queries and event streams hammer
// the same daemon from other goroutines. The assertions are weak on
// purpose — the test's job is to put every lock and atomic under
// contention; correctness-under-eviction has its own deterministic
// tests.
func TestDaemonConcurrentTraffic(t *testing.T) {
	const (
		drivers  = 6
		sessions = 4 // per driver
	)
	d, c := newTestDaemon(t, Config{
		Workers:     4,
		MaxLive:     3,
		IdleTimeout: 20 * time.Millisecond,
		SliceRounds: 4,
	})
	ctx := context.Background()

	stop := make(chan struct{})
	var aux sync.WaitGroup
	// Scrapers and listers run until the drivers are done.
	for i := 0; i < 2; i++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Metrics(ctx); err != nil {
					t.Errorf("Metrics: %v", err)
					return
				}
				if _, err := c.List(ctx); err != nil {
					t.Errorf("List: %v", err)
					return
				}
			}
		}()
	}

	var drv sync.WaitGroup
	for g := 0; g < drivers; g++ {
		drv.Add(1)
		go func(g int) {
			defer drv.Done()
			for i := 0; i < sessions; i++ {
				seed := uint64(1000*g + i)
				req := testWire(seed)
				req.RecordEvents = true
				info, err := c.Create(ctx, req)
				if err != nil {
					t.Errorf("driver %d: Create: %v", g, err)
					return
				}
				// A follower streams the whole session concurrently with
				// stepping, eviction pressure and scrapes.
				fctx, fcancel := context.WithCancel(ctx)
				rc, err := c.Events(fctx, info.ID, client.EventOptions{Follow: true})
				if err != nil {
					fcancel()
					t.Errorf("driver %d: follow: %v", g, err)
					return
				}
				followed := make(chan struct{})
				go func() {
					defer close(followed)
					_, _ = io.Copy(io.Discard, rc)
					rc.Close()
				}()
				if _, err := c.Run(ctx, info.ID, 3); err != nil {
					fcancel()
					t.Errorf("driver %d: Run(3): %v", g, err)
					return
				}
				// Give the janitor a window to evict under the follower's
				// pin and the cap's pressure.
				time.Sleep(5 * time.Millisecond)
				rr, err := c.Run(ctx, info.ID, 0)
				if err != nil {
					fcancel()
					t.Errorf("driver %d: Run(0): %v", g, err)
					return
				}
				if !rr.Solved {
					t.Errorf("driver %d: session %s unsolved: %+v", g, info.ID, rr)
				}
				select {
				case <-followed:
				case <-time.After(5 * time.Second):
					t.Errorf("driver %d: follower never finished", g)
				}
				fcancel()
				if err := c.Delete(ctx, info.ID); err != nil {
					t.Errorf("driver %d: Delete: %v", g, err)
				}
			}
		}(g)
	}
	drv.Wait()
	close(stop)
	aux.Wait()

	if n := len(d.List()); n != 0 {
		t.Fatalf("%d sessions left after all deletes", n)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("final Metrics: %v", err)
	}
	wantCreated := fmt.Sprintf("gossipd_sessions_created_total %d", drivers*sessions)
	if !strings.Contains(text, wantCreated) {
		t.Fatalf("metrics missing %q", wantCreated)
	}
}
