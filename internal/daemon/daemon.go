package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobilegossip"
	"mobilegossip/client"
	"mobilegossip/internal/events"
	"mobilegossip/internal/outcome"
	"mobilegossip/internal/runner"
)

// Config tunes one daemon instance.
type Config struct {
	// StateDir holds eviction checkpoints (<id>.ckpt) and recorded event
	// logs (<id>.events.jsonl). Created if missing. Required.
	StateDir string
	// Workers bounds the scheduler pool; 0 (or negative) means
	// GOMAXPROCS — the same discipline as internal/runner.
	Workers int
	// MaxLive caps the memory-resident session count: crossing it evicts
	// least-recently-touched idle sessions to disk checkpoints. 0 means
	// no cap (only IdleTimeout evicts). The cap is soft — sessions that
	// are stepping, pinned by event followers, or have queued jobs are
	// never evicted, so a burst of simultaneously-running sessions can
	// exceed it until they go idle.
	MaxLive int
	// IdleTimeout evicts sessions untouched for this long. 0 disables
	// idle eviction.
	IdleTimeout time.Duration
	// SliceRounds is the scheduler's fairness quantum: the most rounds
	// one job executes before requeueing. 0 means the default (64).
	SliceRounds int
}

const defaultSliceRounds = 64

// Daemon-level errors, mapped to HTTP statuses by the handlers.
var (
	errNoSession    = errors.New("no such session")
	errShuttingDown = errors.New("daemon is shutting down")
	errFailed       = errors.New("session failed a model contract and can only be inspected or deleted")
)

// Daemon multiplexes simulation sessions over a bounded scheduler with
// checkpoint-backed eviction. Construct with New, serve Handler, Close
// on shutdown.
type Daemon struct {
	cfg   Config
	sched *scheduler
	col   *events.Collector // daemon-wide aggregation of every session bus

	mu       sync.RWMutex
	sessions map[string]*session
	seq      atomic.Int64

	// Scheduler/eviction meters for /metrics.
	created     atomic.Int64
	deleted     atomic.Int64
	live        atomic.Int64 // resident (non-evicted) sessions
	evictedNow  atomic.Int64 // currently evicted sessions
	evictsTotal atomic.Int64
	revivals    atomic.Int64
	evictErrors atomic.Int64
	// droppedBase accumulates the bus drop counters of discarded
	// (evicted/deleted) simulations so gossipd_events_dropped_total is
	// monotonic across evictions.
	droppedBase atomic.Int64

	stop    chan struct{}
	janitor sync.WaitGroup
	closed  atomic.Bool
}

// New validates cfg, creates the state directory, and starts the
// scheduler workers and the eviction janitor.
func New(cfg Config) (*Daemon, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("daemon: Config.StateDir is required")
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: state dir: %w", err)
	}
	if cfg.SliceRounds <= 0 {
		cfg.SliceRounds = defaultSliceRounds
	}
	d := &Daemon{
		cfg:      cfg,
		col:      events.NewCollector(),
		sessions: make(map[string]*session),
		stop:     make(chan struct{}),
	}
	// Pool sizing reuses the sweep runner's discipline: the Workers knob
	// with a GOMAXPROCS default (PoolSize clamps to the grid size, so an
	// effectively-unbounded grid yields the plain resolution).
	workers := runner.Config{Workers: cfg.Workers}.PoolSize(1 << 30)
	d.sched = newScheduler(workers, d.execSlice)
	if cfg.IdleTimeout > 0 {
		d.janitor.Add(1)
		go d.janitorLoop()
	}
	return d, nil
}

// Workers returns the scheduler pool size the daemon resolved.
func (d *Daemon) Workers() int {
	return runner.Config{Workers: d.cfg.Workers}.PoolSize(1 << 30)
}

// Close stops the janitor and the scheduler; queued jobs fail with a
// shutting-down error. In-flight slices finish first, so no session is
// left mid-round.
func (d *Daemon) Close() {
	if d.closed.Swap(true) {
		return
	}
	close(d.stop)
	d.janitor.Wait()
	d.sched.close()
}

func (d *Daemon) ckptPath(id string) string {
	return filepath.Join(d.cfg.StateDir, id+".ckpt")
}

func (d *Daemon) eventsPath(id string) string {
	return filepath.Join(d.cfg.StateDir, id+".events.jsonl")
}

// get looks a session up without touching it.
func (d *Daemon) get(id string) (*session, error) {
	d.mu.RLock()
	s := d.sessions[id]
	d.mu.RUnlock()
	if s == nil {
		return nil, errNoSession
	}
	return s, nil
}

// Create builds a session from the wire request and registers it.
func (d *Daemon) Create(req client.CreateRequest) (client.SessionInfo, error) {
	cfg, err := configFromWire(req)
	if err != nil {
		return client.SessionInfo{}, err
	}
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		return client.SessionInfo{}, err
	}
	return d.register(sim, req.RecordEvents, false)
}

// ResumeUpload builds a session from an uploaded checkpoint stream. The
// client-driven resume is part of the logical run: its session_start and
// checkpoint_resumed events are recorded, exactly as a local
// `gossipsim -resume -events` records them.
func (d *Daemon) ResumeUpload(r io.Reader, recordEvents bool) (client.SessionInfo, error) {
	sim, err := mobilegossip.Resume(r)
	if err != nil {
		return client.SessionInfo{}, err
	}
	return d.register(sim, recordEvents, true)
}

// register wraps a live Simulation into a managed session.
func (d *Daemon) register(sim *mobilegossip.Simulation, recordEvents, resumed bool) (client.SessionInfo, error) {
	if d.closed.Load() {
		return client.SessionInfo{}, errShuttingDown
	}
	cfg := sim.Config()
	id := fmt.Sprintf("s%06d", d.seq.Add(1))
	s := &session{
		id:            id,
		algorithm:     cfg.Algorithm.String(),
		topology:      sim.Result().Topology,
		n:             cfg.N,
		k:             sim.K(),
		tau:           cfg.Tau,
		epsilon:       cfg.Epsilon,
		seed:          cfg.Seed,
		engineWorkers: cfg.EngineWorkers,
		profile:       cfg.Profile,
	}
	if recordEvents {
		rec, err := newRecorder(d.eventsPath(id), resumed)
		if err != nil {
			return client.SessionInfo{}, err
		}
		s.rec = rec
	}
	s.mu.Lock()
	d.attachLocked(s, sim)
	s.syncCachedLocked()
	s.touch()
	s.mu.Unlock()

	d.mu.Lock()
	d.sessions[id] = s
	d.mu.Unlock()
	d.created.Add(1)
	d.live.Add(1)
	d.enforceCap(s)
	return s.info(), nil
}

// attachLocked binds a live Simulation to the session: the daemon-wide
// collector and the session's recorder subscribe to its bus. Call with
// s.mu held.
func (d *Daemon) attachLocked(s *session, sim *mobilegossip.Simulation) {
	s.sim = sim
	s.evicted.Store(false)
	bus := sim.Bus()
	s.subCancels = append(s.subCancels[:0], bus.SubscribeSync(events.Filter{}, d.col.Observe))
	if s.rec != nil {
		s.subCancels = append(s.subCancels, bus.SubscribeSync(events.Filter{}, s.rec.observe))
	}
}

// detachLocked unsubscribes from the current Simulation's bus and folds
// its drop counter into the monotonic base. Call with s.mu held.
func (d *Daemon) detachLocked(s *session) {
	for _, cancel := range s.subCancels {
		cancel()
	}
	s.subCancels = s.subCancels[:0]
	if s.sim != nil {
		d.droppedBase.Add(s.sim.Bus().Dropped())
	}
}

// ensureLiveLocked revives an evicted session from its disk checkpoint.
// Call with s.mu held. Revival is transparent: the wall-clock-only knobs
// (EngineWorkers, Profile) are re-applied, the recorder is armed to drop
// the revived simulation's re-announcement events, and execution
// continues byte-identically to a never-evicted run.
func (d *Daemon) ensureLiveLocked(s *session) error {
	if s.gone {
		return errNoSession
	}
	if s.sim != nil {
		return nil
	}
	sim, err := mobilegossip.ResumeFile(d.ckptPath(s.id))
	if err != nil {
		return fmt.Errorf("reviving session %s: %w", s.id, err)
	}
	sim.SetEngineWorkers(s.engineWorkers)
	if s.profile {
		sim.EnableProfiling()
	}
	if s.rec != nil {
		if err := s.rec.reopen(); err != nil {
			return fmt.Errorf("reviving session %s event log: %w", s.id, err)
		}
		s.rec.armRevival()
	}
	d.attachLocked(s, sim)
	d.live.Add(1)
	d.evictedNow.Add(-1)
	d.revivals.Add(1)
	s.touch()
	d.enforceCap(s)
	return nil
}

// tryEvict checkpoints an idle session to disk and drops its Simulation.
// Best-effort and strictly non-blocking: a session that is stepping
// (lock held), pinned by a follower, queued for work, failed, or already
// evicted is skipped. The checkpoint write is atomic (CheckpointFile),
// so a session is only dropped from memory after its state is safely on
// disk — eviction can never lose a session.
func (d *Daemon) tryEvict(s *session) bool {
	if !s.mu.TryLock() {
		return false
	}
	defer s.mu.Unlock()
	if s.gone || s.failed || s.sim == nil || s.pins.Load() > 0 || s.pendingJobs() > 0 {
		return false
	}
	if s.rec != nil {
		s.rec.setSuppressCheckpoint(true)
	}
	err := s.sim.CheckpointFile(d.ckptPath(s.id))
	if s.rec != nil {
		s.rec.setSuppressCheckpoint(false)
	}
	if err != nil {
		// Disk trouble: keep the session resident rather than lose it.
		d.evictErrors.Add(1)
		return false
	}
	if s.rec != nil {
		s.rec.close()
	}
	d.detachLocked(s)
	s.sim = nil
	s.evicted.Store(true)
	s.evictions.Add(1)
	d.live.Add(-1)
	d.evictedNow.Add(1)
	d.evictsTotal.Add(1)
	return true
}

// enforceCap evicts least-recently-touched idle sessions while the
// resident count exceeds MaxLive. keep (the session being created or
// revived) is never a candidate. Non-blocking: only TryLock-able idle
// sessions are evicted, so the cap is soft under an all-busy burst.
func (d *Daemon) enforceCap(keep *session) {
	if d.cfg.MaxLive <= 0 || d.live.Load() <= int64(d.cfg.MaxLive) {
		return
	}
	d.mu.RLock()
	candidates := make([]*session, 0, len(d.sessions))
	for _, s := range d.sessions {
		if s != keep && !s.evicted.Load() {
			candidates = append(candidates, s)
		}
	}
	d.mu.RUnlock()
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].lastTouch.Load() < candidates[j].lastTouch.Load()
	})
	for _, s := range candidates {
		if d.live.Load() <= int64(d.cfg.MaxLive) {
			return
		}
		d.tryEvict(s)
	}
}

// janitorLoop periodically evicts sessions idle longer than IdleTimeout.
func (d *Daemon) janitorLoop() {
	defer d.janitor.Done()
	tick := d.cfg.IdleTimeout / 2
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-d.cfg.IdleTimeout).UnixNano()
			d.mu.RLock()
			idle := make([]*session, 0, 8)
			for _, s := range d.sessions {
				if !s.evicted.Load() && s.lastTouch.Load() < cutoff {
					idle = append(idle, s)
				}
			}
			d.mu.RUnlock()
			for _, s := range idle {
				d.tryEvict(s)
			}
		}
	}
}

// Run submits a run job (advance by rounds; <= 0 to completion) and
// waits for it. Canceling ctx cancels the job at the next round
// boundary; the session stays usable.
func (d *Daemon) Run(ctx context.Context, id string, rounds int) (client.RunResult, error) {
	s, err := d.get(id)
	if err != nil {
		return client.RunResult{}, err
	}
	s.touch()
	jctx, cancel := context.WithCancel(ctx)
	j := &runJob{s: s, rounds: rounds, target: targetUnset, ctx: jctx, cancel: cancel, done: make(chan struct{})}
	s.addJob(j)
	d.sched.submit(j)
	<-j.done
	cancel()
	if j.err != nil {
		return client.RunResult{}, j.err
	}
	return j.res.(client.RunResult), nil
}

// execSlice is the scheduler's work function: one fairness quantum of
// one job. Returns true when the job is finished (done, canceled, or
// failed) and must not requeue.
func (d *Daemon) execSlice(j *runJob) bool {
	s := j.s
	s.mu.Lock()
	if err := d.ensureLiveLocked(s); err != nil {
		s.mu.Unlock()
		j.finish(nil, err)
		return true
	}
	if s.failed {
		s.mu.Unlock()
		j.finish(nil, errFailed)
		return true
	}
	if j.target == targetUnset {
		if j.rounds <= 0 {
			j.target = targetDone
		} else {
			j.target = s.sim.Round() + j.rounds
		}
	}
	var stepErr error
	canceled := j.ctx.Err() != nil
	for r := 0; r < d.cfg.SliceRounds && !canceled; r++ {
		if s.sim.Done() || (j.target >= 0 && s.sim.Round() >= j.target) {
			break
		}
		if _, err := s.sim.Step(); err != nil {
			stepErr = err
			break
		}
		canceled = j.ctx.Err() != nil
	}
	finished := s.sim.Done() || (j.target >= 0 && s.sim.Round() >= j.target)
	if canceled && !finished && stepErr == nil {
		// Parity with Simulation.Run's cancellation contract: announce
		// the cancellation on the bus; the session stays resumable.
		s.sim.Bus().Publish(events.Event{
			Type: events.TypeSessionCancel, Round: s.sim.Round(), Potential: s.sim.Potential(),
		})
	}
	s.syncCachedLocked()
	s.touch()
	var res client.RunResult
	if stepErr == nil && (finished || canceled) {
		res = s.runResultLocked(canceled && !finished)
	}
	if stepErr != nil {
		s.failed = true
	}
	s.mu.Unlock()

	switch {
	case stepErr != nil:
		j.finish(nil, stepErr)
		return true
	case finished || canceled:
		j.finish(res, nil)
		return true
	default:
		return false
	}
}

// Checkpoint streams the session's checkpoint to w, reviving it first if
// evicted. The write happens under the session lock, at a round
// boundary, so the stream is byte-identical to a local Checkpoint of the
// same logical run at the same round.
func (d *Daemon) Checkpoint(id string, w io.Writer) error {
	s, err := d.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := d.ensureLiveLocked(s); err != nil {
		return err
	}
	s.touch()
	return s.sim.Checkpoint(w)
}

// Rebind swaps the session's topology schedule and stability factor at
// its current round boundary — the service face of Simulation.Rebind,
// driving phased scenario timelines remotely. The swap happens under the
// session lock, so it lands exactly between scheduler slices; eviction
// checkpoints written afterwards carry the new schedule (Rebind updates
// the session config), which is what keeps evict/revive transparent
// across a phase boundary.
func (d *Daemon) Rebind(id string, req client.RebindRequest) (client.SessionInfo, error) {
	s, err := d.get(id)
	if err != nil {
		return client.SessionInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := d.ensureLiveLocked(s); err != nil {
		return client.SessionInfo{}, err
	}
	topo, err := topologyFromWire(req.Topology)
	if err != nil {
		return client.SessionInfo{}, err
	}
	if err := s.sim.Rebind(topo, req.Tau); err != nil {
		return client.SessionInfo{}, err
	}
	s.topology = s.sim.Result().Topology
	s.tau = req.Tau
	s.syncCachedLocked()
	s.touch()
	return s.info(), nil
}

// assertFailure is an assertion violation: HTTP 409, message already
// formatted by internal/outcome (identical to the local runner's).
type assertFailure struct{ msg string }

func (e *assertFailure) Error() string { return e.msg }

// Assert evaluates scenario expect assertions against the session's
// results so far, with the same internal/outcome checker the local
// scenario runner uses — a scenario cannot pass locally and fail
// remotely (or vice versa) on evaluation drift.
func (d *Daemon) Assert(id string, req client.AssertRequest) error {
	s, err := d.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := d.ensureLiveLocked(s); err != nil {
		return err
	}
	s.touch()
	if err := expectFromWire(req.Expect).Validate(); err != nil {
		return err
	}
	r := s.sim.Result()
	vs := outcome.Check(expectFromWire(req.Expect), outcome.Run{
		N: s.n, K: s.k, Solved: r.Solved, Rounds: r.Rounds,
		FinalPotential: r.FinalPotential, TokensMoved: r.TokensMoved,
		EdgesAdded: r.EdgesAdded, EdgesRemoved: r.EdgesRemoved,
	})
	if len(vs) == 0 {
		return nil
	}
	return &assertFailure{msg: outcome.FormatFailure(req.Scenario, req.Seed, req.Phase, vs)}
}

// expectFromWire maps the self-contained wire shape onto the evaluator's.
func expectFromWire(e client.ExpectSpec) outcome.Expect {
	return outcome.Expect{
		Solved: e.Solved, SolvedBy: e.SolvedBy, MinRounds: e.MinRounds,
		MaxFinalPotential: e.MaxFinalPotential, MinCoverage: e.MinCoverage,
		MaxChurnPerRound: e.MaxChurnPerRound,
		MinTokensMoved:   e.MinTokensMoved, MaxTokensMoved: e.MaxTokensMoved,
	}
}

// TokenCount reports how many tokens node u knows, reviving the session
// if needed.
func (d *Daemon) TokenCount(id string, node int) (client.TokenCount, error) {
	s, err := d.get(id)
	if err != nil {
		return client.TokenCount{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := d.ensureLiveLocked(s); err != nil {
		return client.TokenCount{}, err
	}
	if node < 0 || node >= s.n {
		return client.TokenCount{}, fmt.Errorf("node %d outside [0, %d)", node, s.n)
	}
	s.touch()
	return client.TokenCount{Node: node, Count: s.sim.TokenCount(node)}, nil
}

// Cancel cancels the session's queued and in-flight run jobs.
func (d *Daemon) Cancel(id string) error {
	s, err := d.get(id)
	if err != nil {
		return err
	}
	s.touch()
	s.cancelJobs()
	return nil
}

// Delete removes the session and its on-disk state. Queued jobs fail;
// an executing slice finishes first.
func (d *Daemon) Delete(id string) error {
	d.mu.Lock()
	s := d.sessions[id]
	if s == nil {
		d.mu.Unlock()
		return errNoSession
	}
	delete(d.sessions, id)
	d.mu.Unlock()

	s.cancelJobs()
	s.mu.Lock()
	s.gone = true
	wasLive := s.sim != nil
	d.detachLocked(s)
	s.sim = nil
	if s.rec != nil {
		s.rec.close()
	}
	s.mu.Unlock()
	if wasLive {
		d.live.Add(-1)
	} else {
		d.evictedNow.Add(-1)
	}
	d.deleted.Add(1)
	os.Remove(d.ckptPath(id))
	if s.rec != nil {
		os.Remove(d.eventsPath(id))
	}
	return nil
}

// List returns every session's info, sorted by id.
func (d *Daemon) List() []client.SessionInfo {
	d.mu.RLock()
	out := make([]client.SessionInfo, 0, len(d.sessions))
	for _, s := range d.sessions {
		out = append(out, s.info())
	}
	d.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// State returns one session's info without touching (or reviving) it.
func (d *Daemon) State(id string) (client.SessionInfo, error) {
	s, err := d.get(id)
	if err != nil {
		return client.SessionInfo{}, err
	}
	return s.info(), nil
}

// dropped returns the monotonic all-time bus drop count: discarded
// simulations' counters (folded at detach) plus the live ones'.
func (d *Daemon) dropped() int64 {
	total := d.droppedBase.Load()
	d.mu.RLock()
	livesubs := make([]*session, 0, len(d.sessions))
	for _, s := range d.sessions {
		livesubs = append(livesubs, s)
	}
	d.mu.RUnlock()
	for _, s := range livesubs {
		s.mu.Lock()
		if s.sim != nil {
			total += s.sim.Bus().Dropped()
		}
		s.mu.Unlock()
	}
	return total
}

// WriteMetrics renders the daemon-wide exposition: the scheduler and
// eviction gauges, then the aggregated per-session collector.
func (d *Daemon) WriteMetrics(w io.Writer) error {
	d.mu.RLock()
	total := len(d.sessions)
	d.mu.RUnlock()
	rows := []struct {
		name, kind, help string
		value            int64
	}{
		{"gossipd_sessions", "gauge", "Sessions the daemon currently holds, resident or evicted.", int64(total)},
		{"gossipd_sessions_live", "gauge", "Memory-resident sessions.", d.live.Load()},
		{"gossipd_sessions_evicted", "gauge", "Sessions currently evicted to disk checkpoints.", d.evictedNow.Load()},
		{"gossipd_sessions_created_total", "counter", "Sessions created over the daemon's lifetime.", d.created.Load()},
		{"gossipd_sessions_deleted_total", "counter", "Sessions deleted.", d.deleted.Load()},
		{"gossipd_evictions_total", "counter", "Idle sessions checkpointed to disk and dropped from memory.", d.evictsTotal.Load()},
		{"gossipd_revivals_total", "counter", "Evicted sessions transparently revived on touch.", d.revivals.Load()},
		{"gossipd_eviction_errors_total", "counter", "Eviction attempts abandoned on checkpoint write errors (session kept resident).", d.evictErrors.Load()},
		{"gossipd_queue_depth", "gauge", "Run jobs queued on the scheduler.", d.sched.depth.Load()},
		{"gossipd_slices_total", "counter", "Scheduler fairness slices executed.", d.sched.slices.Load()},
		{"gossipd_workers", "gauge", "Scheduler worker pool size.", int64(d.Workers())},
		{"gossipd_events_dropped_total", "counter", "Events dropped by bounded subscriber queues across all session buses, ever.", d.dropped()},
	}
	for _, m := range rows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.kind, m.name, m.value); err != nil {
			return err
		}
	}
	_, err := d.col.WriteTo(w)
	return err
}
