package daemon

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"mobilegossip/internal/events"
)

// recorder is a session's lossless event log: a synchronous bus
// subscriber appending one JSON line per event to a file in the daemon's
// state directory. File-backed (not in-memory) so recorded streams
// survive eviction without holding memory for evicted sessions — the
// whole point of checkpoint-backed eviction.
//
// The recorder is also where eviction transparency is enforced. An
// internal evict/revive cycle injects three bus events a never-evicted
// run would not see: the eviction checkpoint's checkpoint_written, and
// the revived simulation's re-announced session_start and
// checkpoint_resumed. The daemon arms the suppress* flags around those
// operations so the recorded stream stays byte-identical to the stream a
// local uninterrupted run would produce — which is exactly what the
// remote-vs-local determinism cell byte-compares. Client-requested
// checkpoints and client-driven resumes are NOT suppressed: a local run
// that checkpoints (or starts from gossipsim -resume) records those
// events too.
type recorder struct {
	path  string
	lines atomic.Int64

	mu sync.Mutex
	f  *os.File      // nil while the session is evicted
	bw *bufio.Writer // nil while the session is evicted
	// buf is the reused AppendJSON scratch, so steady-state recording
	// costs one buffered write and zero allocations per event.
	buf []byte
	// startSeen: a session_start was recorded, so a revival's
	// re-announcement must be dropped. (If the session was evicted
	// before its first step, the revival's session_start IS the run's
	// first — round 0, same identity — and is recorded.)
	startSeen bool
	// clientResumed: the session was created from an uploaded checkpoint,
	// so the logical stream's prefix legitimately includes a
	// checkpoint_resumed — which must survive even when an eviction lands
	// before the first step (the revival then re-announces it).
	clientResumed bool
	// The suppression flags, armed by the daemon around internal
	// evict/revive operations (see evictLocked / ensureLiveLocked).
	suppressCheckpoint bool // drop checkpoint_written (eviction snapshot)
	suppressNextStart  bool // drop the next session_start (revival)
	suppressNextResume bool // drop the next checkpoint_resumed (revival)
	err                error
}

// newRecorder creates (truncating) the session's event log at path.
// clientResumed marks sessions created from an uploaded checkpoint.
func newRecorder(path string, clientResumed bool) (*recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("daemon: creating event log: %w", err)
	}
	return &recorder{path: path, f: f, bw: bufio.NewWriter(f), clientResumed: clientResumed}, nil
}

// observe is the bus handler: filter revival artifacts, append the line.
func (r *recorder) observe(ev events.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch ev.Type {
	case events.TypeSessionStart:
		if r.suppressNextStart {
			r.suppressNextStart = false
			return
		}
		r.startSeen = true
	case events.TypeCheckpointResumed:
		if r.suppressNextResume {
			r.suppressNextResume = false
			return
		}
	case events.TypeCheckpointWritten:
		if r.suppressCheckpoint {
			return
		}
	}
	if r.bw == nil {
		// Evicted sessions have no subscriptions, so nothing should
		// arrive here; guard anyway rather than crash the daemon.
		return
	}
	r.buf = ev.AppendJSON(r.buf[:0])
	r.buf = append(r.buf, '\n')
	if _, err := r.bw.Write(r.buf); err != nil {
		if r.err == nil {
			r.err = err
		}
		return
	}
	r.lines.Add(1)
}

// armRevival sets the suppression for the revived simulation's
// re-announcement events (called with the session lock held, before the
// revived session can step). A revived simulation always re-announces
// session_start + checkpoint_resumed on its first step; what the logical
// stream legitimately contains at that position is session_start (if not
// yet recorded) plus checkpoint_resumed only when the session itself was
// created from a client-uploaded checkpoint — everything else is an
// eviction artifact and is dropped.
func (r *recorder) armRevival() {
	r.mu.Lock()
	r.suppressNextStart = r.startSeen
	r.suppressNextResume = r.startSeen || !r.clientResumed
	r.mu.Unlock()
}

// setSuppressCheckpoint brackets the internal eviction snapshot.
func (r *recorder) setSuppressCheckpoint(v bool) {
	r.mu.Lock()
	r.suppressCheckpoint = v
	r.mu.Unlock()
}

// close flushes and closes the file (eviction, deletion). Idempotent.
func (r *recorder) close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closeLocked()
}

func (r *recorder) closeLocked() error {
	if r.bw == nil {
		return r.err
	}
	if err := r.bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	if err := r.f.Close(); err != nil && r.err == nil {
		r.err = err
	}
	r.bw, r.f = nil, nil
	return r.err
}

// reopen resumes appending after a revival.
func (r *recorder) reopen() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bw != nil {
		return nil
	}
	f, err := os.OpenFile(r.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		if r.err == nil {
			r.err = err
		}
		return err
	}
	r.f, r.bw = f, bufio.NewWriter(f)
	return nil
}

// snapshot flushes pending writes and returns the recorded stream so
// far, optionally filtered. With a zero filter the raw bytes come back
// untouched (the byte-identical replay path); with a filter each line is
// decoded, matched, and the matching ORIGINAL lines are returned, so
// filtering never re-encodes (and thus never perturbs) recorded bytes.
func (r *recorder) snapshot(f events.Filter) ([]byte, error) {
	r.mu.Lock()
	if r.err != nil {
		err := r.err
		r.mu.Unlock()
		return nil, err
	}
	if r.bw != nil {
		if err := r.bw.Flush(); err != nil {
			if r.err == nil {
				r.err = err
			}
			r.mu.Unlock()
			return nil, err
		}
	}
	raw, err := os.ReadFile(r.path)
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if len(f.Types) == 0 && f.MinRound == 0 && f.MaxRound == 0 {
		return raw, nil
	}
	return filterLines(raw, f)
}

// filterLines keeps the raw JSONL lines whose decoded event matches f.
func filterLines(raw []byte, f events.Filter) ([]byte, error) {
	var out []byte
	for len(raw) > 0 {
		nl := len(raw)
		if i := bytes.IndexByte(raw, '\n'); i >= 0 {
			nl = i + 1
		}
		line := raw[:nl]
		raw = raw[nl:]
		trimmed := line
		if n := len(trimmed); n > 0 && trimmed[n-1] == '\n' {
			trimmed = trimmed[:n-1]
		}
		if len(trimmed) == 0 {
			continue
		}
		ev, err := events.UnmarshalEvent(trimmed)
		if err != nil {
			return nil, err
		}
		if f.Match(ev) {
			out = append(out, line...)
		}
	}
	return out, nil
}
