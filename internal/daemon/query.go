package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"mobilegossip"
	"mobilegossip/client"
	"mobilegossip/internal/core"
	"mobilegossip/internal/events"
)

// This file is the daemon's wire-decoding boundary: every byte sequence
// a client can put on the wire funnels through decodeCreateRequest or
// parseEventsQuery before it reaches the simulator. Both are pure
// functions of their input — no I/O, no daemon state — which is what
// makes them fuzzable (see fuzz_test.go): the invariant under fuzzing is
// "reject or normalize, never panic".

// maxCreateBody bounds the session-create JSON body. The largest honest
// request is well under a kilobyte; a megabyte leaves room for growth
// while keeping a hostile body from ballooning the decoder.
const maxCreateBody = 1 << 20

// decodeCreateRequest parses a session-create JSON body strictly:
// unknown fields are errors (they are usually typos — silently dropping
// "epsilon_" would run a different experiment than the client asked
// for), as is trailing garbage after the object.
func decodeCreateRequest(body []byte) (client.CreateRequest, error) {
	var req client.CreateRequest
	if len(body) > maxCreateBody {
		return req, fmt.Errorf("request body exceeds %d bytes", maxCreateBody)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("decoding create request: %w", err)
	}
	if dec.More() {
		return req, fmt.Errorf("decoding create request: trailing data after JSON object")
	}
	return req, nil
}

// configFromWire resolves the wire request's enum names with the same
// Parse* functions the gossipsim flags use (so error messages list the
// valid names) and assembles the Config. Numeric validation stays with
// mobilegossip.New — the daemon adds no second opinion on what a valid
// Config is.
func configFromWire(req client.CreateRequest) (mobilegossip.Config, error) {
	var cfg mobilegossip.Config
	alg, err := mobilegossip.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return cfg, err
	}
	topo, err := topologyFromWire(req.Topology)
	if err != nil {
		return cfg, err
	}
	cfg = mobilegossip.Config{
		Algorithm:     alg,
		N:             req.N,
		K:             req.K,
		Topology:      topo,
		Tau:           req.Tau,
		Epsilon:       req.Epsilon,
		TagBits:       req.TagBits,
		Seed:          req.Seed,
		MaxRounds:     req.MaxRounds,
		Concurrent:    req.Concurrent,
		EngineWorkers: req.EngineWorkers,
		Profile:       req.Profile,
		TransferEps:   req.TransferEps,
		CrowdedBin:    core.CrowdedBinConfig{Beta: req.CrowdedBinBeta, Gamma: req.CrowdedBinGamma},
	}
	return cfg, nil
}

func topologyFromWire(spec client.TopologySpec) (mobilegossip.Topology, error) {
	var t mobilegossip.Topology
	kind, err := mobilegossip.ParseTopologyKind(spec.Kind)
	if err != nil {
		return t, err
	}
	t = mobilegossip.Topology{
		Kind:       kind,
		Degree:     spec.Degree,
		P:          spec.P,
		Rows:       spec.Rows,
		Cols:       spec.Cols,
		CliqueSize: spec.CliqueSize,
		PathLen:    spec.PathLen,
		Radius:     spec.Radius,
		Attach:     spec.Attach,
		Speed:      spec.Speed,
		Pause:      spec.Pause,
		LevyAlpha:  spec.LevyAlpha,
		Groups:     spec.Groups,
		Attract:    spec.Attract,
		Period:     spec.Period,
		AdvBudget:  spec.AdvBudget,
		AdvParts:   spec.AdvParts,
		AdvPeriod:  spec.AdvPeriod,
	}
	if spec.Adversary != "" {
		adv, err := mobilegossip.ParseAdversaryKind(spec.Adversary)
		if err != nil {
			return t, err
		}
		t.Adversary = adv
	}
	if spec.Relabel != "" {
		rel, err := mobilegossip.ParseRelabelKind(spec.Relabel)
		if err != nil {
			return t, err
		}
		t.Relabel = rel
	}
	return t, nil
}

// parseEventsQuery parses the events endpoint's query string into an
// event filter plus the follow flag:
//
//	filter=TYPE[,TYPE...]  type allow-list (empty/absent: every type)
//	minround=N, maxround=N inclusive round window (0: open)
//	follow=1|true          live-stream after replay (SSE)
//
// Unknown parameters are rejected for the same reason unknown JSON
// fields are: a typo like "fitler=" silently streaming everything is
// worse than an error.
func parseEventsQuery(rawQuery string) (events.Filter, bool, error) {
	var f events.Filter
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return f, false, fmt.Errorf("parsing events query: %w", err)
	}
	follow := false
	for key, vals := range q {
		val := vals[len(vals)-1]
		switch key {
		case "filter":
			if val == "" {
				continue
			}
			for _, name := range strings.Split(val, ",") {
				t, err := events.ParseType(strings.TrimSpace(name))
				if err != nil {
					return f, false, err
				}
				f.Types = append(f.Types, t)
			}
		case "minround", "maxround":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return f, false, fmt.Errorf("events query: %s must be a non-negative integer, got %q", key, val)
			}
			if key == "minround" {
				f.MinRound = n
			} else {
				f.MaxRound = n
			}
		case "follow":
			switch val {
			case "1", "true":
				follow = true
			case "0", "false", "":
				follow = false
			default:
				return f, false, fmt.Errorf("events query: follow must be 0/1/true/false, got %q", val)
			}
		default:
			return f, false, fmt.Errorf("events query: unknown parameter %q", key)
		}
	}
	if f.MinRound > 0 && f.MaxRound > 0 && f.MinRound > f.MaxRound {
		return f, false, fmt.Errorf("events query: minround %d exceeds maxround %d", f.MinRound, f.MaxRound)
	}
	return f, follow, nil
}
