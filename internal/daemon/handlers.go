package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"mobilegossip"
	"mobilegossip/client"
	"mobilegossip/internal/events"
)

// Handler returns the daemon's HTTP surface: the /v1 session tree plus
// /metrics. The concrete mux comes back so callers can mount extras
// (gossipd -pprof mounts httpserve.MountPprof on it).
func (d *Daemon) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/version", d.handleVersion)
	mux.HandleFunc("POST /v1/sessions", d.handleCreate)
	mux.HandleFunc("GET /v1/sessions", d.handleList)
	mux.HandleFunc("POST /v1/sessions/resume", d.handleResume)
	mux.HandleFunc("GET /v1/sessions/{id}", d.handleState)
	mux.HandleFunc("DELETE /v1/sessions/{id}", d.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/run", d.handleRun)
	mux.HandleFunc("POST /v1/sessions/{id}/rebind", d.handleRebind)
	mux.HandleFunc("POST /v1/sessions/{id}/assert", d.handleAssert)
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", d.handleCheckpoint)
	mux.HandleFunc("POST /v1/sessions/{id}/cancel", d.handleCancel)
	mux.HandleFunc("GET /v1/sessions/{id}/tokens", d.handleTokens)
	mux.HandleFunc("GET /v1/sessions/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	return mux
}

// writeJSON encodes v with a status; encode errors past the header are
// unreportable and dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErr maps daemon errors onto HTTP statuses and the APIError body.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var assertErr *assertFailure
	switch {
	case errors.Is(err, errNoSession):
		status = http.StatusNotFound
	case errors.Is(err, errFailed), errors.As(err, &assertErr):
		status = http.StatusConflict
	case errors.Is(err, errShuttingDown):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, &client.APIError{Message: err.Error()})
}

func (d *Daemon) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, client.Version{
		API:               "v1",
		CheckpointVersion: mobilegossip.CheckpointVersion,
		EventSchema:       events.Schema,
	})
}

func (d *Daemon) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxCreateBody+1))
	if err != nil {
		writeErr(w, fmt.Errorf("reading request body: %w", err))
		return
	}
	req, err := decodeCreateRequest(body)
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := d.Create(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (d *Daemon) handleResume(w http.ResponseWriter, r *http.Request) {
	record := r.URL.Query().Get("record_events") == "1"
	info, err := d.ResumeUpload(r.Body, record)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.List())
}

func (d *Daemon) handleState(w http.ResponseWriter, r *http.Request) {
	info, err := d.State(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (d *Daemon) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := d.Delete(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRun long-polls: the response arrives when the job reaches its
// target (or finishes, or is canceled). A client disconnect cancels the
// job via the request context, so an abandoned run stops consuming
// scheduler slices.
func (d *Daemon) handleRun(w http.ResponseWriter, r *http.Request) {
	var req client.RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, fmt.Errorf("decoding run request: %w", err))
		return
	}
	res, err := d.Run(r.Context(), r.PathValue("id"), req.Rounds)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (d *Daemon) handleRebind(w http.ResponseWriter, r *http.Request) {
	var req client.RebindRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64*1024))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("decoding rebind request: %w", err))
		return
	}
	info, err := d.Rebind(r.PathValue("id"), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (d *Daemon) handleAssert(w http.ResponseWriter, r *http.Request) {
	var req client.AssertRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64*1024))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("decoding assert request: %w", err))
		return
	}
	if err := d.Assert(r.PathValue("id"), req); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (d *Daemon) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Reviving and serializing under the session lock can't stream
	// straight to the response: an error mid-stream would corrupt the
	// download. The checkpoint is small (DESIGN.md §10); buffer it.
	s, err := d.get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	var buf writerBuffer
	if err := d.Checkpoint(s.id, &buf); err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

// writerBuffer is bytes.Buffer's Write without the rest of it.
type writerBuffer []byte

func (b *writerBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := d.Cancel(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (d *Daemon) handleTokens(w http.ResponseWriter, r *http.Request) {
	node, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		writeErr(w, fmt.Errorf("tokens query: node must be an integer"))
		return
	}
	tc, err := d.TokenCount(r.PathValue("id"), node)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tc)
}

// handleEvents serves the session's event stream as NDJSON (one event
// JSON line per event, the internal/events line format):
//
//   - Replay: with recording enabled, the recorded lines so far (filtered
//     server-side by ?filter=&minround=&maxround=) — byte-identical to
//     the JSONL a local run's event sink writes.
//   - Follow (?follow=1): after the replay, the response stays open and
//     streams matching live events as the session steps, until the
//     session ends or the client disconnects. The session is pinned
//     resident while followed (eviction skips pinned sessions).
//
// Follow attaches the live subscription and snapshots the replay under
// the session lock, so the hand-off is gapless and duplicate-free: every
// event is either in the replay or on the subscription, never both.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	filter, follow, err := parseEventsQuery(r.URL.RawQuery)
	if err != nil {
		writeErr(w, err)
		return
	}
	s, err := d.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	s.touch()

	var replay []byte
	var sub *events.Subscription
	s.mu.Lock()
	if follow {
		if err := d.ensureLiveLocked(s); err != nil {
			s.mu.Unlock()
			writeErr(w, err)
			return
		}
		s.pins.Add(1)
		defer s.pins.Add(-1)
		// Follow wants the end of the stream too, which the round-window
		// filter would cut off; subscribe for lifecycle events regardless
		// and re-filter rounds client-side of the channel.
		sub = s.sim.Bus().Subscribe(events.Filter{Types: filter.Types}, 1024)
		defer sub.Close()
	}
	if s.rec != nil {
		replay, err = s.rec.snapshot(filter)
	}
	s.mu.Unlock()
	if err != nil {
		writeErr(w, err)
		return
	}
	if !follow && s.rec == nil {
		writeErr(w, fmt.Errorf("session %s does not record events (create with record_events); live streaming needs follow=1", s.id))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if len(replay) > 0 {
		if _, err := w.Write(replay); err != nil {
			return
		}
	}
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	if !follow {
		return
	}
	var buf []byte
	for {
		select {
		case <-r.Context().Done():
			return
		case <-d.stop:
			return
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if !filter.Match(ev) {
				if ev.Type == events.TypeSessionEnd {
					return
				}
				continue
			}
			buf = ev.AppendJSON(buf[:0])
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Type == events.TypeSessionEnd {
				return
			}
		}
	}
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = d.WriteMetrics(w)
}
