package mobilegossip_test

// Integration tests for the session event bus: the events a real run
// publishes, their causal order, and their agreement with the legacy
// observer/Result surfaces (DESIGN.md §12).

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"mobilegossip"
)

func collectRun(t *testing.T, cfg mobilegossip.Config) (*mobilegossip.EventRing, mobilegossip.Result) {
	t.Helper()
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring := mobilegossip.NewEventRing(1 << 16)
	ring.Attach(sim.Bus(), mobilegossip.EventFilter{})
	res, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return ring, res
}

func TestSessionEventSequence(t *testing.T) {
	ring, res := collectRun(t, mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 64, K: 8,
		Topology: mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint},
		Tau:      1, Seed: 7,
	})
	evs := ring.Events(mobilegossip.EventFilter{})
	if len(evs) < 3 {
		t.Fatalf("only %d events for a full run", len(evs))
	}

	first, last := evs[0], evs[len(evs)-1]
	if first.Type != mobilegossip.EventSessionStart {
		t.Fatalf("first event is %s, want session_start", first.Type)
	}
	if first.N != 64 || first.K != 8 || first.Algorithm != "sharedbit" {
		t.Fatalf("session_start identity = %+v", first)
	}
	if last.Type != mobilegossip.EventSessionEnd {
		t.Fatalf("last event is %s, want session_end", last.Type)
	}
	if last.Solved != res.Solved || last.Round != res.Rounds ||
		last.Connections != res.Connections || last.TokensMoved != res.TokensMoved {
		t.Fatalf("session_end %+v disagrees with Result %+v", last, res)
	}

	rounds := ring.Events(mobilegossip.EventFilter{
		Types: []mobilegossip.EventType{mobilegossip.EventRoundCompleted},
	})
	if len(rounds) != res.Rounds {
		t.Fatalf("%d round_completed events, want one per round (%d)", len(rounds), res.Rounds)
	}
	for i, ev := range rounds {
		if ev.Round != i+1 {
			t.Fatalf("round event %d carries round %d", i, ev.Round)
		}
	}
	if !rounds[len(rounds)-1].Done {
		t.Fatal("final round_completed not marked done")
	}

	// Mobility churns the topology; churn events must precede their
	// round's completion and sum to the run totals.
	var added, removed int64
	seenRound := 0
	for _, ev := range evs {
		switch ev.Type {
		case mobilegossip.EventChurnApplied:
			if ev.Round != seenRound+1 {
				t.Fatalf("churn for round %d arrived after round_completed %d", ev.Round, seenRound)
			}
			added += int64(ev.EdgesAdded)
			removed += int64(ev.EdgesRemoved)
		case mobilegossip.EventRoundCompleted:
			seenRound = ev.Round
		}
	}
	if added != res.EdgesAdded || removed != res.EdgesRemoved {
		t.Fatalf("churn events total +%d/-%d, Result says +%d/-%d",
			added, removed, res.EdgesAdded, res.EdgesRemoved)
	}
	if added == 0 {
		t.Fatal("mobility run produced no churn events")
	}
}

func TestAdversaryEpochEvents(t *testing.T) {
	ring, _ := collectRun(t, mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 64, K: 4,
		Topology: mobilegossip.Topology{
			Kind: mobilegossip.RandomRegular, Degree: 4,
			Adversary: mobilegossip.AdvBipartition,
		},
		Tau:  1,
		Seed: 11,
	})
	epochs := ring.Events(mobilegossip.EventFilter{
		Types: []mobilegossip.EventType{mobilegossip.EventAdversaryEpoch},
	})
	if len(epochs) == 0 {
		t.Fatal("adversarial run published no adversary_epoch events")
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i].Epoch <= epochs[i-1].Epoch {
			t.Fatalf("epochs not strictly increasing: %d then %d",
				epochs[i-1].Epoch, epochs[i].Epoch)
		}
	}
}

func TestSessionCancelEvent(t *testing.T) {
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 64, K: 32,
		Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Tau:      1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := mobilegossip.NewEventRing(64)
	ring.Attach(sim.Bus(), mobilegossip.EventFilter{
		Types: []mobilegossip.EventType{mobilegossip.EventSessionCancel, mobilegossip.EventSessionEnd},
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Run(ctx); err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	evs := ring.Events(mobilegossip.EventFilter{})
	if len(evs) != 1 || evs[0].Type != mobilegossip.EventSessionCancel {
		t.Fatalf("canceled run published %v, want exactly one session_cancel", evs)
	}

	// The session stays usable: finishing it publishes session_end.
	if _, err := sim.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ends := ring.Events(mobilegossip.EventFilter{
		Types: []mobilegossip.EventType{mobilegossip.EventSessionEnd},
	})
	if len(ends) != 1 {
		t.Fatalf("finished run published %d session_end events, want 1", len(ends))
	}
}

func TestCheckpointEvents(t *testing.T) {
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 64, K: 32,
		Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
		Tau:      1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := mobilegossip.NewEventRing(64)
	ring.Attach(sim.Bus(), mobilegossip.EventFilter{})
	for i := 0; i < 5; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := sim.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	written := ring.Events(mobilegossip.EventFilter{
		Types: []mobilegossip.EventType{mobilegossip.EventCheckpointWritten},
	})
	if len(written) != 1 || written[0].Round != 5 {
		t.Fatalf("checkpoint_written events = %v, want one at round 5", written)
	}

	resumed, err := mobilegossip.Resume(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	ring2 := mobilegossip.NewEventRing(64)
	ring2.Attach(resumed.Bus(), mobilegossip.EventFilter{})
	if _, err := resumed.Step(); err != nil {
		t.Fatal(err)
	}
	evs := ring2.Events(mobilegossip.EventFilter{})
	if len(evs) < 3 ||
		evs[0].Type != mobilegossip.EventSessionStart ||
		evs[1].Type != mobilegossip.EventCheckpointResumed ||
		evs[2].Type != mobilegossip.EventRoundCompleted {
		t.Fatalf("resumed session opened with %v, want start, resumed, round", evs)
	}
	if evs[1].Round != 5 || evs[2].Round != 6 {
		t.Fatalf("resume events at rounds %d/%d, want 5/6", evs[1].Round, evs[2].Round)
	}
}

// TestJSONLSinkOnSession checks the end-to-end path gossipsim -events
// uses: every published event lands in the file as valid JSON with the
// schema version and a parseable type.
func TestJSONLSinkOnSession(t *testing.T) {
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 32, K: 4,
		Topology: mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint},
		Tau:      1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sink := mobilegossip.NewJSONLSink(sim.Bus(), &out, mobilegossip.EventFilter{}, 1<<16)
	res, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Dropped() != 0 {
		t.Fatalf("sink dropped %d events with an oversized queue", sink.Dropped())
	}

	lines := bytes.Split(bytes.TrimRight(out.Bytes(), "\n"), []byte("\n"))
	if int64(len(lines)) != sink.Written() {
		t.Fatalf("%d lines vs Written=%d", len(lines), sink.Written())
	}
	var roundLines int
	for i, line := range lines {
		var obj struct {
			V    int    `json:"v"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if obj.V != mobilegossip.EventSchema {
			t.Fatalf("line %d schema %d, want %d", i+1, obj.V, mobilegossip.EventSchema)
		}
		ty, err := mobilegossip.ParseEventType(obj.Type)
		if err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if ty == mobilegossip.EventRoundCompleted {
			roundLines++
		}
	}
	if roundLines != res.Rounds {
		t.Fatalf("%d round_completed lines, want %d", roundLines, res.Rounds)
	}
}

func TestEventTypesSurface(t *testing.T) {
	types := mobilegossip.EventTypes()
	if len(types) != 10 {
		t.Fatalf("EventTypes() = %d types, want 10", len(types))
	}
	for _, ty := range types {
		back, err := mobilegossip.ParseEventType(ty.String())
		if err != nil || back != ty {
			t.Fatalf("ParseEventType(%q) = %v, %v", ty.String(), back, err)
		}
	}
}
