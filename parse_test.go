package mobilegossip

import (
	"strings"
	"testing"
)

// TestEnumerators pins Algorithms/TopologyKinds as the single source of
// truth: every enumerated value round-trips through String/Parse, every
// registered name is enumerated, and unknown-name errors list the valid
// names so the CLI user never has to guess.
func TestEnumerators(t *testing.T) {
	algs := Algorithms()
	if len(algs) != len(algNames) {
		t.Errorf("Algorithms() has %d entries, registry has %d", len(algs), len(algNames))
	}
	for i, a := range algs {
		if got, err := ParseAlgorithm(a.String()); err != nil || got != a {
			t.Errorf("algorithm %d (%v) does not round-trip: %v %v", i, a, got, err)
		}
	}
	if got := AlgorithmNames(); len(got) != len(algs) || got[0] != "blindmatch" {
		t.Errorf("AlgorithmNames() = %v", got)
	}

	kinds := TopologyKinds()
	if len(kinds) != len(kindNames) {
		t.Errorf("TopologyKinds() has %d entries, registry has %d", len(kinds), len(kindNames))
	}
	for i, k := range kinds {
		if got, err := ParseTopologyKind(k.String()); err != nil || got != k {
			t.Errorf("kind %d (%v) does not round-trip: %v %v", i, k, got, err)
		}
	}

	if _, err := ParseAlgorithm("nope"); err == nil || !strings.Contains(err.Error(), "sharedbit") {
		t.Errorf("ParseAlgorithm error does not enumerate valid names: %v", err)
	}
	if _, err := ParseTopologyKind("nope"); err == nil || !strings.Contains(err.Error(), "waypoint") {
		t.Errorf("ParseTopologyKind error does not enumerate valid names: %v", err)
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{AlgBlindMatch, AlgSharedBit, AlgSimSharedBit, AlgCrowdedBin} {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Errorf("%v: %v", a, err)
			continue
		}
		if got != a {
			t.Errorf("round trip %v -> %q -> %v", a, a.String(), got)
		}
	}
}

func TestParseAlgorithmUnknown(t *testing.T) {
	if _, err := ParseAlgorithm("push-pull"); err == nil {
		t.Error("unknown algorithm name should fail")
	}
	if s := Algorithm(42).String(); s != "Algorithm(42)" {
		t.Errorf("unknown algorithm String() = %q", s)
	}
}

func TestParseTopologyKindRoundTrip(t *testing.T) {
	kinds := []TopologyKind{
		Cycle, Path, Complete, Star, DoubleStar,
		Grid, Hypercube, GNP, RandomRegular, Barbell,
		RandomGeometric, PreferentialAttachment,
		MobileWaypoint, MobileLevy, MobileGroup, MobileCommuter,
	}
	for _, k := range kinds {
		got, err := ParseTopologyKind(k.String())
		if err != nil {
			t.Errorf("%v: %v", k, err)
			continue
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
}

func TestParseTopologyKindUnknown(t *testing.T) {
	if _, err := ParseTopologyKind("smallworld"); err == nil {
		t.Error("unknown topology name should fail")
	}
	if s := TopologyKind(42).String(); s != "TopologyKind(42)" {
		t.Errorf("unknown kind String() = %q", s)
	}
}

// TestEveryTopologyKindInspectable: each named family must build and be
// measurable at some valid size (hypercube needs a power of two; the rest
// take 16).
func TestEveryTopologyKindInspectable(t *testing.T) {
	kinds := []TopologyKind{
		Cycle, Path, Complete, Star, DoubleStar,
		Grid, Hypercube, GNP, RandomRegular, Barbell,
		RandomGeometric, PreferentialAttachment,
		MobileWaypoint, MobileLevy, MobileGroup, MobileCommuter,
	}
	for _, k := range kinds {
		info, err := (Topology{Kind: k}).Inspect(16, 1)
		if err != nil {
			t.Errorf("%v: %v", k, err)
			continue
		}
		if info.N != 16 || info.MaxDegree < 1 || info.Diameter < 1 || info.Alpha <= 0 {
			t.Errorf("%v: implausible info %+v", k, info)
		}
	}
}
