package mobilegossip

import "testing"

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{AlgBlindMatch, AlgSharedBit, AlgSimSharedBit, AlgCrowdedBin} {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Errorf("%v: %v", a, err)
			continue
		}
		if got != a {
			t.Errorf("round trip %v -> %q -> %v", a, a.String(), got)
		}
	}
}

func TestParseAlgorithmUnknown(t *testing.T) {
	if _, err := ParseAlgorithm("push-pull"); err == nil {
		t.Error("unknown algorithm name should fail")
	}
	if s := Algorithm(42).String(); s != "Algorithm(42)" {
		t.Errorf("unknown algorithm String() = %q", s)
	}
}

func TestParseTopologyKindRoundTrip(t *testing.T) {
	kinds := []TopologyKind{
		Cycle, Path, Complete, Star, DoubleStar,
		Grid, Hypercube, GNP, RandomRegular, Barbell,
		RandomGeometric, PreferentialAttachment,
		MobileWaypoint, MobileLevy, MobileGroup, MobileCommuter,
	}
	for _, k := range kinds {
		got, err := ParseTopologyKind(k.String())
		if err != nil {
			t.Errorf("%v: %v", k, err)
			continue
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
}

func TestParseTopologyKindUnknown(t *testing.T) {
	if _, err := ParseTopologyKind("smallworld"); err == nil {
		t.Error("unknown topology name should fail")
	}
	if s := TopologyKind(42).String(); s != "TopologyKind(42)" {
		t.Errorf("unknown kind String() = %q", s)
	}
}

// TestEveryTopologyKindInspectable: each named family must build and be
// measurable at some valid size (hypercube needs a power of two; the rest
// take 16).
func TestEveryTopologyKindInspectable(t *testing.T) {
	kinds := []TopologyKind{
		Cycle, Path, Complete, Star, DoubleStar,
		Grid, Hypercube, GNP, RandomRegular, Barbell,
		RandomGeometric, PreferentialAttachment,
		MobileWaypoint, MobileLevy, MobileGroup, MobileCommuter,
	}
	for _, k := range kinds {
		info, err := (Topology{Kind: k}).Inspect(16, 1)
		if err != nil {
			t.Errorf("%v: %v", k, err)
			continue
		}
		if info.N != 16 || info.MaxDegree < 1 || info.Diameter < 1 || info.Alpha <= 0 {
			t.Errorf("%v: implausible info %+v", k, info)
		}
	}
}
