package mobilegossip

import (
	"io"

	"mobilegossip/internal/events"
	"mobilegossip/internal/mtm"
	"mobilegossip/internal/trace"
)

// RoundStats reports one executed simulation round: the engine meters for
// exactly that round (not running totals) plus the potential after it.
type RoundStats struct {
	// Round is the 1-based round just executed.
	Round int
	// Potential is φ at the end of the round (0 once fully solved).
	Potential int
	// Connections and Proposals count this round's accepted connections
	// and sent proposals.
	Connections int
	Proposals   int
	// ControlBits and TokensMoved are the communication metered over this
	// round's connections.
	ControlBits int64
	TokensMoved int64
	// EdgesAdded and EdgesRemoved are the topology churn entering this
	// round (0 for static and regenerating schedules).
	EdgesAdded   int
	EdgesRemoved int
	// Done reports whether the protocol reached its objective at the end
	// of this round.
	Done bool
}

// Observer receives the lifecycle events of one simulation. Observers
// compose: any number can watch the same run, and the provided
// implementations (TraceObserver, PotentialSampler, ChurnMeter) cover the
// instrumentation the old OnRound/TraceWriter special cases hard-wired.
//
// Events fire on the stepping goroutine: BeginRun once before the first
// round (including the first round after a Resume), EndRound after every
// round, and EndRun once when the run finishes — by objective or by
// MaxRounds, but not on context cancellation, which leaves the simulation
// resumable. Observer methods must not call back into Step or Run.
type Observer interface {
	// BeginRun fires before the first round this session executes. The
	// simulation is live: Round, Potential and TokenCount are readable.
	BeginRun(sim *Simulation)
	// EndRound fires after every executed round.
	EndRound(stats RoundStats)
	// EndRun fires once, when the run is over, with the final Result.
	EndRun(res Result)
}

// protocolWrapper is the internal hook for observers that need to tap the
// protocol layer (per-proposal/per-connection events) rather than the
// round summaries.
type protocolWrapper interface {
	wrapProtocol(p mtm.Protocol) mtm.Protocol
}

// NopObserver is a no-op Observer; embed it to implement only the events
// you care about.
type NopObserver struct{}

// BeginRun implements Observer.
func (NopObserver) BeginRun(*Simulation) {}

// EndRound implements Observer.
func (NopObserver) EndRound(RoundStats) {}

// EndRun implements Observer.
func (NopObserver) EndRun(Result) {}

// TraceObserver records every proposal and accepted connection as one JSON
// line (see internal/trace for the event schema) — the observer form of
// the old Config.TraceWriter field.
type TraceObserver struct {
	NopObserver
	rec *trace.Recorder
}

// NewTraceObserver returns a TraceObserver writing JSONL events to w.
func NewTraceObserver(w io.Writer) *TraceObserver {
	return &TraceObserver{rec: trace.NewRecorder(w)}
}

// Events returns the number of events recorded so far.
func (t *TraceObserver) Events() int64 { return t.rec.Events() }

// Err returns the first write error encountered, if any. Check it after
// the run; recording continues to be attempted after an error.
func (t *TraceObserver) Err() error { return t.rec.Err() }

func (t *TraceObserver) wrapProtocol(p mtm.Protocol) mtm.Protocol {
	return trace.Wrap(p, t.rec)
}

// PotentialSample is one point of a potential curve.
type PotentialSample struct {
	Round     int
	Potential int
}

// PotentialSampler records the potential curve φ(r): one sample when the
// run begins, one every `every` rounds, and one at the final round — the
// observer form of the old Config.OnRound progress traces.
type PotentialSampler struct {
	NopObserver
	every   int
	samples []PotentialSample
}

// NewPotentialSampler returns a sampler recording every `every` rounds
// (minimum 1).
func NewPotentialSampler(every int) *PotentialSampler {
	if every < 1 {
		every = 1
	}
	return &PotentialSampler{every: every}
}

// BeginRun implements Observer: records the curve's starting point (the
// checkpointed round when the simulation was resumed).
func (ps *PotentialSampler) BeginRun(sim *Simulation) {
	ps.samples = append(ps.samples, PotentialSample{Round: sim.Round(), Potential: sim.Potential()})
}

// EndRound implements Observer.
func (ps *PotentialSampler) EndRound(stats RoundStats) {
	if stats.Round%ps.every == 0 || stats.Done {
		ps.samples = append(ps.samples, PotentialSample{Round: stats.Round, Potential: stats.Potential})
	}
}

// EndRun implements Observer: guarantees the curve ends at the final
// round even when the run stops between sampling points (MaxRounds
// exhaustion leaves stats.Done false on the last round).
func (ps *PotentialSampler) EndRun(res Result) {
	if n := len(ps.samples); n == 0 || ps.samples[n-1].Round != res.Rounds {
		ps.samples = append(ps.samples, PotentialSample{Round: res.Rounds, Potential: res.FinalPotential})
	}
}

// Samples returns the recorded curve in round order.
func (ps *PotentialSampler) Samples() []PotentialSample { return ps.samples }

// ChurnMeter accumulates the topology churn a run's dynamic schedule
// produced: total edges added/removed, and how many rounds changed the
// topology at all.
type ChurnMeter struct {
	NopObserver
	rounds  int
	changes int
	added   int64
	removed int64
}

// NewChurnMeter returns an empty churn meter.
func NewChurnMeter() *ChurnMeter { return &ChurnMeter{} }

// EndRound implements Observer.
func (cm *ChurnMeter) EndRound(stats RoundStats) {
	cm.rounds++
	if stats.EdgesAdded > 0 || stats.EdgesRemoved > 0 {
		cm.changes++
		cm.added += int64(stats.EdgesAdded)
		cm.removed += int64(stats.EdgesRemoved)
	}
}

// Rounds returns the number of rounds observed.
func (cm *ChurnMeter) Rounds() int { return cm.rounds }

// Changes returns the number of observed rounds whose topology changed.
func (cm *ChurnMeter) Changes() int { return cm.changes }

// EdgesAdded returns the total edges added over the observed rounds.
func (cm *ChurnMeter) EdgesAdded() int64 { return cm.added }

// EdgesRemoved returns the total edges removed over the observed rounds.
func (cm *ChurnMeter) EdgesRemoved() int64 { return cm.removed }

// fanOut delivers bus events to the attached Observer pipeline; it is
// registered as a synchronous bus subscriber by the first Observe call,
// making every observer a (lossless, in-order) bus subscriber without
// changing the pipeline's behavior: BeginRun on the session-start
// event, EndRound per completed round, EndRun on session end. Other
// event types carry no observer callback and pass through.
func (s *Simulation) fanOut(ev events.Event) {
	switch ev.Type {
	case events.TypeSessionStart:
		for _, o := range s.observers {
			o.BeginRun(s)
		}
	case events.TypeRoundCompleted:
		stats := RoundStats{
			Round:        ev.Round,
			Potential:    ev.Potential,
			Connections:  int(ev.Connections),
			Proposals:    int(ev.Proposals),
			ControlBits:  ev.ControlBits,
			TokensMoved:  ev.TokensMoved,
			EdgesAdded:   ev.EdgesAdded,
			EdgesRemoved: ev.EdgesRemoved,
			Done:         ev.Done,
		}
		for _, o := range s.observers {
			o.EndRound(stats)
		}
	case events.TypeSessionEnd:
		res := s.Result()
		for _, o := range s.observers {
			o.EndRun(res)
		}
	}
}

// onRoundObserver adapts the legacy Config.OnRound callback onto the
// observer pipeline.
type onRoundObserver struct {
	NopObserver
	fn func(round, potential int)
}

func (o onRoundObserver) EndRound(stats RoundStats) { o.fn(stats.Round, stats.Potential) }
