// Command benchtable regenerates the paper's evaluation exhibits.
//
// Every row of the paper's Figure 1 (the table of round-complexity bounds)
// and every supporting theorem/lemma has an experiment E1..E14 (see
// DESIGN.md §3). benchtable runs one or all of them and prints the tables
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchtable                # run every experiment at -quick sizes
//	benchtable -exp e5        # one experiment
//	benchtable -quick=false   # full sizes (slower, tighter shapes)
//	benchtable -list          # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mobilegossip/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtable:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtable", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "", "experiment id or comma list (e1..e20); empty = all")
		quick = fs.Bool("quick", true, "shrink sizes/trials so the full suite finishes in minutes")
		seed  = fs.Uint64("seed", 42, "experiment seed")
		list  = fs.Bool("list", false, "list experiments and exit")
		asCSV = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %-55s [%s]\n", e.ID, e.Title, e.Exhibit)
		}
		return nil
	}

	opts := harness.Options{Quick: *quick, Seed: *seed}
	var todo []harness.Experiment
	if *exp == "" {
		todo = harness.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.Lookup(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		render := tab.Render
		if *asCSV {
			render = tab.RenderCSV
		}
		if err := render(os.Stdout); err != nil {
			return err
		}
		if !*asCSV {
			fmt.Printf("-- %s finished in %v\n\n", e.ID, elapsed)
		}
	}
	return nil
}
