// Command benchtable regenerates the paper's evaluation exhibits.
//
// Every row of the paper's Figure 1 (the table of round-complexity bounds)
// and every supporting theorem/lemma has an experiment E1..E14 (see
// DESIGN.md §3). benchtable runs one or all of them and prints the tables
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchtable                # run every experiment at -quick sizes
//	benchtable -exp e5        # one experiment
//	benchtable -quick=false   # full sizes (slower, tighter shapes)
//	benchtable -list          # list experiments
//	benchtable -parallel 8    # bound the sweep engine's worker pool
//	benchtable -engineworkers 4           # shard each run across 4 cores
//	benchtable -json > BENCH_quick.json   # machine-readable tables
//
// Experiment grids run on the internal/runner worker pool (GOMAXPROCS
// workers by default); results are bit-identical at every -parallel value.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mobilegossip/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtable:", err)
		os.Exit(1)
	}
}

// jsonDoc is the BENCH_*.json document -json emits: schema tag, the run
// parameters, and every experiment table.
type jsonDoc struct {
	Schema    string           `json:"schema"`
	GoVersion string           `json:"go_version"`
	Quick     bool             `json:"quick"`
	Seed      uint64           `json:"seed"`
	Workers   int              `json:"workers"`
	ElapsedMS int64            `json:"elapsed_ms"`
	Tables    []*harness.Table `json:"tables"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtable", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment id or comma list (e1..e27); empty = all")
		quick    = fs.Bool("quick", true, "shrink sizes/trials so the full suite finishes in minutes")
		seed     = fs.Uint64("seed", 42, "experiment seed")
		list     = fs.Bool("list", false, "list experiments and exit")
		asCSV    = fs.Bool("csv", false, "emit CSV instead of aligned text")
		asJSON   = fs.Bool("json", false, "emit one BENCH-shaped JSON document instead of text")
		parallel = fs.Int("parallel", 0, "sweep worker pool size; 0 = GOMAXPROCS (results identical at any value)")
		engineW  = fs.Int("engineworkers", 0, "shard-parallel engine workers per run; 0 = sequential under the pool (results identical at any value)")
		progress = fs.Bool("progress", false, "report sweep progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed by the FlagSet
		}
		return err
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %-55s [%s]\n", e.ID, e.Title, e.Exhibit)
		}
		return nil
	}

	opts := harness.Options{Quick: *quick, Seed: *seed, Workers: *parallel, EngineWorkers: *engineW}
	var todo []harness.Experiment
	if *exp == "" {
		todo = harness.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.Lookup(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			todo = append(todo, e)
		}
	}

	doc := jsonDoc{
		Schema:    "mobilegossip/benchtable-v1",
		GoVersion: runtime.Version(),
		Quick:     *quick,
		Seed:      *seed,
		Workers:   *parallel,
	}
	if doc.Workers <= 0 {
		doc.Workers = runtime.GOMAXPROCS(0)
	}

	suiteStart := time.Now()
	for _, e := range todo {
		if *progress {
			cur := e.ID
			opts.OnProgress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d", cur, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if *asJSON {
			doc.Tables = append(doc.Tables, tab)
			continue
		}
		render := tab.Render
		if *asCSV {
			render = tab.RenderCSV
		}
		if err := render(os.Stdout); err != nil {
			return err
		}
		if !*asCSV {
			fmt.Printf("-- %s finished in %v\n\n", e.ID, elapsed)
		}
	}
	if *asJSON {
		doc.ElapsedMS = time.Since(suiteStart).Milliseconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}
