// Command gossipsim runs one gossip simulation in the mobile telephone
// model and prints the outcome.
//
// Usage:
//
//	gossipsim -alg sharedbit -graph regular -n 128 -k 16 -seed 1
//	gossipsim -alg crowdedbin -graph gnp -n 256 -k 32
//	gossipsim -alg sharedbit -graph regular -n 128 -k 128 -epsilon 0.75
//	gossipsim -alg simsharedbit -graph doublestar -n 64 -k 4 -tau 1
//
// The -trace flag prints the potential φ(r) every -trace rounds, which
// makes the progress dynamics of each algorithm visible.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"mobilegossip"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	var (
		algName   = fs.String("alg", "sharedbit", "algorithm: blindmatch|sharedbit|simsharedbit|crowdedbin")
		graphName = fs.String("graph", "regular", "topology: cycle|path|complete|star|doublestar|grid|hypercube|gnp|regular|barbell")
		n         = fs.Int("n", 64, "network size")
		k         = fs.Int("k", 8, "token count (1..n)")
		tau       = fs.Int("tau", 0, "stability factor; 0 = static (τ=∞), t>=1 redraws topology every t rounds")
		degree    = fs.Int("degree", 4, "degree for -graph regular")
		p         = fs.Float64("p", 0, "edge probability for -graph gnp (0 = default 2·ln(n)/n)")
		epsilon   = fs.Float64("epsilon", 0, "ε-gossip fraction in (0,1); requires -alg sharedbit and -k = -n")
		seed      = fs.Uint64("seed", 1, "run seed (fully determines the execution)")
		maxRounds = fs.Int("maxrounds", 0, "abort after this many rounds (0 = engine default)")
		trace     = fs.Int("trace", 0, "print φ(r) every this many rounds (0 = off)")
		conc      = fs.Bool("concurrent", false, "use the goroutine-per-connection backend")
		tagBits   = fs.Int("b", 0, "tag length for -alg sharedbit (>=2 runs the multi-bit generalization)")
		traceFile = fs.String("tracefile", "", "write per-proposal/per-connection JSONL events to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	alg, err := mobilegossip.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	kind, err := mobilegossip.ParseTopologyKind(*graphName)
	if err != nil {
		return err
	}

	cfg := mobilegossip.Config{
		Algorithm:  alg,
		N:          *n,
		K:          *k,
		Topology:   mobilegossip.Topology{Kind: kind, Degree: *degree, P: *p},
		Tau:        *tau,
		Epsilon:    *epsilon,
		TagBits:    *tagBits,
		Seed:       *seed,
		MaxRounds:  *maxRounds,
		Concurrent: *conc,
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceWriter = f
	}
	if *trace > 0 {
		every := *trace
		cfg.OnRound = func(r, phi int) {
			if r%every == 0 {
				fmt.Printf("round %8d  φ=%d\n", r, phi)
			}
		}
	}

	start := time.Now()
	res, err := mobilegossip.Run(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\t%s\n", res.Algorithm)
	fmt.Fprintf(tw, "topology\t%s (n=%d, τ=%s)\n", res.Topology, *n, tauString(*tau))
	fmt.Fprintf(tw, "tokens\t%d\n", *k)
	if *epsilon > 0 {
		fmt.Fprintf(tw, "objective\tε-gossip (ε=%.2f)\n", *epsilon)
	} else {
		fmt.Fprintf(tw, "objective\tgossip (all nodes learn all tokens)\n")
	}
	fmt.Fprintf(tw, "solved\t%v\n", res.Solved)
	fmt.Fprintf(tw, "rounds\t%d\n", res.Rounds)
	fmt.Fprintf(tw, "connections\t%d\n", res.Connections)
	fmt.Fprintf(tw, "proposals\t%d\n", res.Proposals)
	fmt.Fprintf(tw, "control bits\t%d\n", res.ControlBits)
	fmt.Fprintf(tw, "tokens moved\t%d\n", res.TokensMoved)
	fmt.Fprintf(tw, "final φ\t%d\n", res.FinalPotential)
	fmt.Fprintf(tw, "wall time\t%v\n", elapsed.Round(time.Millisecond))
	return tw.Flush()
}

func tauString(tau int) string {
	if tau <= 0 {
		return "∞"
	}
	return fmt.Sprintf("%d", tau)
}
