// Command gossipsim runs gossip simulations in the mobile telephone model
// and prints the outcome.
//
// Usage:
//
//	gossipsim -alg sharedbit -graph regular -n 128 -k 16 -seed 1
//	gossipsim -alg crowdedbin -graph gnp -n 256 -k 32
//	gossipsim -alg sharedbit -graph regular -n 128 -k 128 -epsilon 0.75
//	gossipsim -alg simsharedbit -graph doublestar -n 64 -k 4 -tau 1
//	gossipsim -alg sharedbit -graph rgg -n 100000 -k 16 -maxrounds 500
//	gossipsim -alg sharedbit -graph waypoint -n 5000 -k 8 -tau 1 -speed 0.02
//	gossipsim -alg simsharedbit -graph group -n 2000 -k 8 -tau 1 -attract 0.9
//
// An adversarial strategy (-adversary, see internal/adversary) can be
// layered over any topology, including the mobility models:
//
//	gossipsim -alg sharedbit -graph regular -n 256 -k 8 -tau 1 -adversary bipartition
//	gossipsim -alg sharedbit -graph waypoint -n 1000 -k 8 -tau 1 -adversary cutrich -advbudget 100
//	gossipsim -alg simsharedbit -graph regular -n 256 -k 8 -tau 1 -adversary blackout -advparts 4
//
// Comma lists in -n and -k, or -trials > 1, switch to the parallel sweep
// path: the n×k cross-product grid runs -trials times per point on the
// worker pool (see mobilegossip.RunSweep), printing one aggregate row per
// point — or, with -json, one BENCH-shaped JSON document:
//
//	gossipsim -alg sharedbit -n 64,128,256 -k 8 -tau 1 -trials 5
//	gossipsim -alg sharedbit -n 64 -k 4,8,16 -trials 7 -parallel 4 -json
//
// Single runs are driven through the stateful session API (mobilegossip.New)
// and can be checkpointed and resumed:
//
//	gossipsim -alg sharedbit -graph waypoint -n 2000 -k 8 -tau 1 \
//	    -checkpoint run.ckpt -checkpointat 50     # snapshot at round 50, then finish
//	gossipsim -resume run.ckpt                    # revive the snapshot, run to the end
//
// The resumed run's totals are byte-identical to the uninterrupted run's —
// the checkpoint carries the full deterministic state (token sets, every
// RNG stream, mobility trajectories).
//
// The -trace flag prints the potential φ(r) every -trace rounds; -sample
// records the φ(r) curve through a PotentialSampler observer and prints it
// after the run (both single runs only).
//
// Structured observability (DESIGN.md §12, single runs only): -events
// streams the session's typed event log — rounds, churn, adversary
// epochs, checkpoints, session lifecycle — as JSONL, and -metrics serves
// a Prometheus-style scrape endpoint for the run's duration:
//
//	gossipsim -alg sharedbit -graph waypoint -n 5000 -k 8 -tau 1 \
//	    -events events.jsonl -metrics :9090
//	curl -s localhost:9090/metrics    # while the run lasts
//
// Profiling (DESIGN.md §13, single runs only): -profile attaches the
// engine's timing sidecar — round/phase latency histograms, shard
// balance, the stall detector — without changing the simulation's output
// in any way. The run then emits round_profile events into -events
// (feed the file to runreport), exposes latency histograms and a health
// gauge on -metrics alongside Go's /debug/pprof handlers, and prints a
// "profile:"-prefixed timing summary after the result table:
//
//	gossipsim -alg sharedbit -graph waypoint -n 5000 -k 8 -tau 1 \
//	    -profile -events run.jsonl -metrics :9090
//	runreport run.jsonl
//	curl -s localhost:9090/debug/pprof/profile?seconds=5 > cpu.pb.gz
//
// Remote mode (-remote ADDR) drives the same single-run commands against
// a gossipd daemon instead of in-process: create (or -resume via
// checkpoint upload), run, -checkpoint/-checkpointat via checkpoint
// download, -events via recorded-stream replay. The daemon executes the
// identical deterministic simulation, so the result table, checkpoint
// files and event stream are byte-identical to the local run's — which
// the determinism CI matrix asserts:
//
//	gossipd -addr 127.0.0.1:7373 &
//	gossipsim -remote 127.0.0.1:7373 -alg sharedbit -graph waypoint \
//	    -n 2000 -k 8 -tau 1 -events remote.jsonl -checkpoint remote.ckpt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"mobilegossip"
	"mobilegossip/client"
	"mobilegossip/internal/httpserve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gossipsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "run" {
		return runScenario(args[1:])
	}
	fs := flag.NewFlagSet("gossipsim", flag.ContinueOnError)
	var (
		algName   = fs.String("alg", "sharedbit", "algorithm: "+strings.Join(mobilegossip.AlgorithmNames(), "|"))
		graphName = fs.String("graph", "regular", "topology or mobility model: "+strings.Join(mobilegossip.TopologyKindNames(), "|"))
		nList     = fs.String("n", "64", "network size, or comma list for a sweep")
		kList     = fs.String("k", "8", "token count (1..n), or comma list for a sweep")
		tau       = fs.Int("tau", 0, "stability factor; 0 = static (τ=∞), t>=1 redraws topology every t rounds")
		degree    = fs.Int("degree", 4, "degree for -graph regular")
		p         = fs.Float64("p", 0, "edge probability for -graph gnp (0 = default 2·ln(n)/n)")
		radius    = fs.Float64("radius", 0, "connection radius for -graph rgg, or radio range for the mobility models (0 = default)")
		attach    = fs.Int("attach", 0, "edges per new vertex for -graph pa (0 = default 3)")
		speed     = fs.Float64("speed", 0, "per-round motion step for the mobility models (0 = default 0.01; negative = frozen)")
		pause     = fs.Int("pause", 0, "waypoint dwell in motion epochs for -graph waypoint (0 = default 2)")
		levyAlpha = fs.Float64("levyalpha", 0, "Lévy tail exponent for -graph levy (0 = default 1.6)")
		groups    = fs.Int("groups", 0, "attractor count for -graph group (0 = default 4)")
		attract   = fs.Float64("attract", 0, "gathering intensity in [0,1] for -graph group (0 = default 0.6; negative = 0)")
		period    = fs.Int("period", 0, "commute cycle in rounds for -graph commuter (0 = default 64)")
		advName   = fs.String("adversary", "none", "adversarial strategy layered over -graph: "+strings.Join(mobilegossip.AdversaryKindNames(), "|"))
		advBudget = fs.Int("advbudget", 0, "max edges the adversary may cut per epoch (0 = unlimited)")
		advParts  = fs.Int("advparts", 0, "adversary partition count: bridges groups / blackout regions (0 = default 4), topk k (0 = default 3)")
		advPeriod = fs.Int("advperiod", 0, "blackout/partition event cycle in epochs (0 = default 8)")
		epsilon   = fs.Float64("epsilon", 0, "ε-gossip fraction in (0,1); requires -alg sharedbit and -k = -n")
		seed      = fs.Uint64("seed", 1, "run seed (fully determines the execution, sweep or single)")
		maxRounds = fs.Int("maxrounds", 0, "abort after this many rounds (0 = engine default)")
		trace     = fs.Int("trace", 0, "print φ(r) every this many rounds (0 = off, single runs only)")
		conc      = fs.Bool("concurrent", false, "use the goroutine-per-connection engine backend")
		engineW   = fs.Int("engineworkers", 0, "shard-parallel engine workers: 0 = auto (GOMAXPROCS, large runs only), 1 = sequential, >=2 exact; results identical at any value")
		relabelF  = fs.String("relabel", "none", "cache-aware vertex relabeling for generated topologies: "+strings.Join(mobilegossip.RelabelKindNames(), "|"))
		tagBits   = fs.Int("b", 0, "tag length for -alg sharedbit (>=2 runs the multi-bit generalization)")
		traceFile = fs.String("tracefile", "", "write per-proposal/per-connection JSONL events to this file (single runs only)")
		trials    = fs.Int("trials", 1, "repetitions per sweep point (>1 switches to the sweep path)")
		parallel  = fs.Int("parallel", 0, "sweep worker pool size; 0 = GOMAXPROCS (results identical at any value)")
		asJSON    = fs.Bool("json", false, "emit the sweep as a BENCH-shaped JSON document")
		ckptFile  = fs.String("checkpoint", "", "write a checkpoint to this file at round -checkpointat, then keep running (single runs only)")
		ckptAt    = fs.Int("checkpointat", 0, "round at which -checkpoint snapshots the run (0 = when the run finishes)")
		resumeF   = fs.String("resume", "", "resume from this checkpoint file; the simulation flags come from the checkpoint")
		sample    = fs.Int("sample", 0, "record φ(r) every this many rounds and print the curve after the run (single runs only)")
		eventsF   = fs.String("events", "", "write session events (round/churn/checkpoint/session, DESIGN.md §12) as JSONL to this file (single runs only)")
		metricsF  = fs.String("metrics", "", "serve Prometheus-style /metrics plus /debug/pprof on this address, e.g. :9090, for the run's duration (single runs only)")
		profileF  = fs.Bool("profile", false, "attach the engine timing profiler (DESIGN.md §13): round_profile events, latency histograms on -metrics, a post-run summary; never changes the simulation's results (single runs only)")
		remoteF   = fs.String("remote", "", "drive the run against the gossipd daemon at this address (host:port) instead of in-process; output is byte-identical to the local run (single runs only)")
		remoteGap = fs.Duration("remotepause", 0, "with -remote: idle this long between the -checkpointat snapshot and the final run, giving a daemon with a short -idletimeout room to evict and revive the session (a determinism test hook)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed by the FlagSet
		}
		return err
	}

	opts := obsOptions{
		trace: *trace, traceFile: *traceFile, sample: *sample,
		ckptFile: *ckptFile, ckptAt: *ckptAt,
		events: *eventsF, metrics: *metricsF, profile: *profileF,
	}
	if *remoteF != "" {
		if *trace > 0 || *traceFile != "" || *sample > 0 || *metricsF != "" || *profileF {
			return fmt.Errorf("-trace, -tracefile, -sample, -metrics and -profile run in-process observers and do not combine with -remote")
		}
	} else if *remoteGap > 0 {
		return fmt.Errorf("-remotepause requires -remote")
	}
	if *resumeF != "" {
		if *remoteF != "" {
			return runRemoteResume(*remoteF, *resumeF, *remoteGap, opts)
		}
		return runResume(*resumeF, *engineW, opts)
	}

	alg, err := mobilegossip.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	kind, err := mobilegossip.ParseTopologyKind(*graphName)
	if err != nil {
		return err
	}
	adv, err := mobilegossip.ParseAdversaryKind(*advName)
	if err != nil {
		return err
	}
	relabel, err := mobilegossip.ParseRelabelKind(*relabelF)
	if err != nil {
		return err
	}
	ns, err := parseIntList("n", *nList)
	if err != nil {
		return err
	}
	ks, err := parseIntList("k", *kList)
	if err != nil {
		return err
	}

	mkConfig := func(n, k int) mobilegossip.Config {
		return mobilegossip.Config{
			Algorithm: alg,
			N:         n,
			K:         k,
			Topology: mobilegossip.Topology{
				Kind: kind, Degree: *degree, P: *p, Radius: *radius, Attach: *attach,
				Speed: *speed, Pause: *pause, LevyAlpha: *levyAlpha,
				Groups: *groups, Attract: *attract, Period: *period,
				Adversary: adv, AdvBudget: *advBudget,
				AdvParts: *advParts, AdvPeriod: *advPeriod,
				Relabel: relabel,
			},
			Tau:           *tau,
			Epsilon:       *epsilon,
			TagBits:       *tagBits,
			MaxRounds:     *maxRounds,
			Concurrent:    *conc,
			EngineWorkers: *engineW,
		}
	}

	if len(ns) > 1 || len(ks) > 1 || *trials > 1 || *asJSON {
		if *trace > 0 || *traceFile != "" || *sample > 0 || *ckptFile != "" || *eventsF != "" || *metricsF != "" || *profileF {
			return fmt.Errorf("-trace, -tracefile, -sample, -checkpoint, -events, -metrics and -profile apply to single runs only, not sweeps")
		}
		if *remoteF != "" {
			return fmt.Errorf("-remote applies to single runs only, not sweeps")
		}
		var points []mobilegossip.Config
		for _, n := range ns {
			for _, k := range ks {
				points = append(points, mkConfig(n, k))
			}
		}
		return runSweep(points, *trials, *seed, *parallel, *asJSON)
	}
	cfg := mkConfig(ns[0], ks[0])
	cfg.Seed = *seed
	cfg.Profile = *profileF
	if *remoteF != "" {
		return runRemote(*remoteF, cfg, *remoteGap, opts)
	}
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		return err
	}
	return driveSingle(sim, opts)
}

// runSweep executes the n×k grid on the worker pool and prints one
// aggregate row per point (or the JSON document).
func runSweep(points []mobilegossip.Config, trials int, seed uint64, parallel int, asJSON bool) error {
	if trials < 1 {
		trials = 1 // mirror RunSweep's default so the summary line counts right
	}
	sr, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{
		Points:  points,
		Trials:  trials,
		Seed:    seed,
		Workers: parallel,
	})
	if err != nil {
		return err
	}
	if asJSON {
		return sr.WriteJSON(os.Stdout)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\ttopology\tn\tk\ttrials\tsolved\trounds mean\t[min,max]\tconns mean")
	for _, pt := range sr.Points {
		topo := pt.Config.Topology.Kind.String()
		if len(pt.Runs) > 0 {
			topo = pt.Runs[0].Topology
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.1f\t[%d,%d]\t%.0f\n",
			pt.Config.Algorithm, topo, pt.Config.N, pt.Config.K,
			len(pt.Runs), pt.Solved, pt.MeanRounds, pt.MinRounds, pt.MaxRounds,
			pt.MeanConnections)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("%d runs on %d workers in %v\n",
		len(sr.Points)*trials, sr.Workers, sr.Elapsed.Round(time.Millisecond))
	return nil
}

// obsOptions bundles the observability/checkpoint flags shared by the
// fresh-run and resume paths.
type obsOptions struct {
	trace     int
	traceFile string
	sample    int
	ckptFile  string
	ckptAt    int
	events    string // -events: JSONL event-sink file
	metrics   string // -metrics: /metrics listen address
	profile   bool   // -profile: attach the timing sidecar
}

// runResume revives a checkpointed session and drives it to completion.
// Checkpoints carry no worker count or profiling state (sequential,
// parallel, profiled and unprofiled runs all write interchangeable
// streams), so the -engineworkers and -profile flags apply to the
// revived session directly.
func runResume(path string, engineWorkers int, opts obsOptions) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sim, err := mobilegossip.Resume(f)
	f.Close()
	if err != nil {
		return err
	}
	sim.SetEngineWorkers(engineWorkers)
	if opts.profile {
		sim.EnableProfiling()
	}
	fmt.Printf("resumed from %s at round %d (φ=%d)\n", path, sim.Round(), sim.Potential())
	return driveSingle(sim, opts)
}

// wireRequest renders cfg as the daemon's create request (enum values by
// their wire names — the same names the flags parse).
func wireRequest(cfg mobilegossip.Config, recordEvents bool) client.CreateRequest {
	t := cfg.Topology
	return client.CreateRequest{
		Algorithm: cfg.Algorithm.String(),
		N:         cfg.N,
		K:         cfg.K,
		Topology: client.TopologySpec{
			Kind: t.Kind.String(), Degree: t.Degree, P: t.P,
			Rows: t.Rows, Cols: t.Cols,
			CliqueSize: t.CliqueSize, PathLen: t.PathLen,
			Radius: t.Radius, Attach: t.Attach,
			Speed: t.Speed, Pause: t.Pause, LevyAlpha: t.LevyAlpha,
			Groups: t.Groups, Attract: t.Attract, Period: t.Period,
			Adversary: t.Adversary.String(), AdvBudget: t.AdvBudget,
			AdvParts: t.AdvParts, AdvPeriod: t.AdvPeriod,
			Relabel: t.Relabel.String(),
		},
		Tau:           cfg.Tau,
		Epsilon:       cfg.Epsilon,
		TagBits:       cfg.TagBits,
		Seed:          cfg.Seed,
		MaxRounds:     cfg.MaxRounds,
		Concurrent:    cfg.Concurrent,
		EngineWorkers: cfg.EngineWorkers,
		Profile:       cfg.Profile,
		TransferEps:   cfg.TransferEps,
		RecordEvents:  recordEvents,
	}
}

// runRemote creates a session on the daemon from cfg and drives it like
// driveSingle drives a local one.
func runRemote(addr string, cfg mobilegossip.Config, pause time.Duration, opts obsOptions) error {
	c := client.New(addr)
	ctx := context.Background()
	info, err := c.Create(ctx, wireRequest(cfg, opts.events != ""))
	if err != nil {
		return err
	}
	return driveRemote(ctx, c, info, pause, opts)
}

// runRemoteResume uploads a checkpoint file to the daemon and drives the
// revived session. The daemon re-resolves worker count and profiling for
// its own process (checkpoints deliberately carry neither).
func runRemoteResume(addr, path string, pause time.Duration, opts obsOptions) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	c := client.New(addr)
	ctx := context.Background()
	info, err := c.Resume(ctx, f, opts.events != "")
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("resumed from %s at round %d (φ=%d)\n", path, info.Round, info.Potential)
	return driveRemote(ctx, c, info, pause, opts)
}

// driveRemote mirrors driveSingle over the wire: run to -checkpointat
// and download the snapshot, run to completion, download the recorded
// events, print the summary table — every artifact byte-identical to the
// local run's. The session is deleted on the way out.
func driveRemote(ctx context.Context, c *client.Client, info client.SessionInfo, pause time.Duration, opts obsOptions) error {
	id := info.ID
	defer c.Delete(context.Background(), id) //nolint:errcheck // best-effort cleanup
	start := time.Now()
	if opts.ckptFile != "" && opts.ckptAt > 0 {
		if rel := opts.ckptAt - info.Round; rel > 0 {
			if _, err := c.Run(ctx, id, rel); err != nil {
				return err
			}
		}
		if err := downloadCheckpoint(ctx, c, id, opts.ckptFile); err != nil {
			return err
		}
	}
	if pause > 0 {
		// Determinism test hook: idle here so a daemon with a short
		// -idletimeout evicts the session; the final run below must then
		// revive it with no observable difference.
		time.Sleep(pause)
	}
	res, err := c.Run(ctx, id, 0)
	if err != nil {
		return err
	}
	if opts.ckptFile != "" && opts.ckptAt <= 0 {
		if err := downloadCheckpoint(ctx, c, id, opts.ckptFile); err != nil {
			return err
		}
	}
	if opts.events != "" {
		if err := downloadEvents(ctx, c, id, opts.events); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	s := res.Session
	return printResultTable(resultView{
		algorithm: res.Algorithm, topology: res.Topology,
		n: s.N, k: s.K, tau: s.Tau, epsilon: s.Epsilon,
		solved: res.Solved, rounds: res.Rounds,
		connections: res.Connections, proposals: res.Proposals,
		controlBits: res.ControlBits, tokensMoved: res.TokensMoved,
		edgesAdded: res.EdgesAdded, edgesRemoved: res.EdgesRemoved,
		finalPotential: res.FinalPotential, elapsed: elapsed,
	})
}

// downloadCheckpoint fetches the session's checkpoint into path and
// prints the same confirmation line writeCheckpoint prints locally.
func downloadCheckpoint(ctx context.Context, c *client.Client, id, path string) error {
	rc, err := c.Checkpoint(ctx, id)
	if err != nil {
		return err
	}
	defer rc.Close()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, rc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := c.State(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint written to %s at round %d (φ=%d)\n", path, info.Round, info.Potential)
	return nil
}

// downloadEvents replays the session's recorded event stream into path —
// the bytes a local -events file holds.
func downloadEvents(ctx context.Context, c *client.Client, id, path string) error {
	rc, err := c.Events(ctx, id, client.EventOptions{})
	if err != nil {
		return err
	}
	defer rc.Close()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, rc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// driveSingle attaches the requested observers, runs the session to
// completion (snapshotting at -checkpointat if asked), and prints the
// summary.
func driveSingle(sim *mobilegossip.Simulation, opts obsOptions) error {
	var tracer *mobilegossip.TraceObserver
	if opts.traceFile != "" {
		f, err := os.Create(opts.traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = mobilegossip.NewTraceObserver(f)
		sim.Observe(tracer)
	}
	if opts.trace > 0 {
		every := opts.trace
		sim.Observe(roundPrinter{every: every})
	}
	var sampler *mobilegossip.PotentialSampler
	if opts.sample > 0 {
		sampler = mobilegossip.NewPotentialSampler(opts.sample)
		sim.Observe(sampler)
	}
	var sink *mobilegossip.EventJSONLSink
	if opts.events != "" {
		f, err := os.Create(opts.events)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = mobilegossip.NewJSONLSink(sim.Bus(), f, mobilegossip.EventFilter{}, 0)
	}
	if opts.metrics != "" {
		stop, err := serveMetrics(sim, opts.metrics)
		if err != nil {
			return err
		}
		defer stop()
	}

	start := time.Now()
	if opts.ckptFile != "" && opts.ckptAt > 0 {
		for !sim.Done() && sim.Round() < opts.ckptAt {
			if _, err := sim.Step(); err != nil {
				return err
			}
		}
		if err := writeCheckpoint(sim, opts.ckptFile); err != nil {
			return err
		}
	}
	res, err := sim.Run(context.Background())
	if err == nil && tracer != nil {
		// A failed trace stream must fail the command (as the legacy
		// TraceWriter path did), not ship a truncated JSONL with exit 0.
		err = tracer.Err()
	}
	if sink != nil {
		// Drain and flush whether or not the run failed; a dead event
		// stream fails the command like a dead trace stream does.
		cerr := sink.Close()
		if err == nil {
			err = cerr
		}
		if d := sink.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "events: %d events dropped (writer slower than the simulation; see DESIGN.md §12)\n", d)
		}
	}
	if err != nil {
		return err
	}
	if opts.ckptFile != "" && opts.ckptAt <= 0 {
		if err := writeCheckpoint(sim, opts.ckptFile); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	return printResult(sim, res, sampler, elapsed)
}

// serveMetrics binds the -metrics address and serves the run's metrics
// collector plus Go's pprof handlers until the returned stop function is
// called. The fail-fast bind, graceful shutdown and pprof mounting live
// in internal/httpserve, shared with the gossipd daemon.
func serveMetrics(sim *mobilegossip.Simulation, addr string) (stop func(), err error) {
	col := mobilegossip.NewMetricsCollector()
	col.Attach(sim.Bus())
	mux := http.NewServeMux()
	mux.Handle("/metrics", col)
	httpserve.MountPprof(mux)
	srv, err := httpserve.Start(addr, mux)
	if err != nil {
		return nil, fmt.Errorf("-metrics: %w", err)
	}
	fmt.Fprintf(os.Stderr, "serving /metrics and /debug/pprof on http://%s/\n", srv.Addr())
	return func() {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "metrics server shutdown: %v\n", err)
		}
	}, nil
}

// writeCheckpoint snapshots the session to path.
func writeCheckpoint(sim *mobilegossip.Simulation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sim.Checkpoint(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("checkpoint written to %s at round %d (φ=%d)\n", path, sim.Round(), sim.Potential())
	return nil
}

// roundPrinter is the -trace observer: φ every N rounds.
type roundPrinter struct {
	mobilegossip.NopObserver
	every int
}

func (rp roundPrinter) EndRound(stats mobilegossip.RoundStats) {
	if stats.Round%rp.every == 0 {
		fmt.Printf("round %8d  φ=%d\n", stats.Round, stats.Potential)
	}
}

// resultView is the run summary as plain data, so the local path
// (Simulation + Result) and the remote path (wire RunResult) render the
// byte-identical table through one printer.
type resultView struct {
	algorithm, topology                              string
	n, k, tau                                        int
	epsilon                                          float64
	solved                                           bool
	rounds                                           int
	connections, proposals, controlBits, tokensMoved int64
	edgesAdded, edgesRemoved                         int64
	finalPotential                                   int
	elapsed                                          time.Duration
}

// printResultTable renders the single-run summary table from the view.
func printResultTable(v resultView) error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\t%s\n", v.algorithm)
	fmt.Fprintf(tw, "topology\t%s (n=%d, τ=%s)\n", v.topology, v.n, tauString(v.tau))
	fmt.Fprintf(tw, "tokens\t%d\n", v.k)
	if v.epsilon > 0 {
		fmt.Fprintf(tw, "objective\tε-gossip (ε=%.2f)\n", v.epsilon)
	} else {
		fmt.Fprintf(tw, "objective\tgossip (all nodes learn all tokens)\n")
	}
	fmt.Fprintf(tw, "solved\t%v\n", v.solved)
	fmt.Fprintf(tw, "rounds\t%d\n", v.rounds)
	fmt.Fprintf(tw, "connections\t%d\n", v.connections)
	fmt.Fprintf(tw, "proposals\t%d\n", v.proposals)
	fmt.Fprintf(tw, "control bits\t%d\n", v.controlBits)
	fmt.Fprintf(tw, "tokens moved\t%d\n", v.tokensMoved)
	if v.edgesAdded > 0 || v.edgesRemoved > 0 {
		fmt.Fprintf(tw, "edge churn\t+%d/-%d (%.1f per round)\n",
			v.edgesAdded, v.edgesRemoved,
			float64(v.edgesAdded+v.edgesRemoved)/float64(max(v.rounds, 1)))
	}
	fmt.Fprintf(tw, "final φ\t%d\n", v.finalPotential)
	fmt.Fprintf(tw, "wall time\t%v\n", v.elapsed.Round(time.Millisecond))
	return tw.Flush()
}

// printResult renders the single-run summary table plus the local-only
// extras (-sample curve, -profile timing summary).
func printResult(sim *mobilegossip.Simulation, res mobilegossip.Result, sampler *mobilegossip.PotentialSampler, elapsed time.Duration) error {
	cfg := sim.Config()
	if err := printResultTable(resultView{
		algorithm: res.Algorithm.String(), topology: res.Topology,
		n: cfg.N, k: cfg.K, tau: cfg.Tau, epsilon: cfg.Epsilon,
		solved: res.Solved, rounds: res.Rounds,
		connections: res.Connections, proposals: res.Proposals,
		controlBits: res.ControlBits, tokensMoved: res.TokensMoved,
		edgesAdded: res.EdgesAdded, edgesRemoved: res.EdgesRemoved,
		finalPotential: res.FinalPotential, elapsed: elapsed,
	}); err != nil {
		return err
	}
	if sampler != nil {
		fmt.Println("\npotential curve (from -sample):")
		for _, s := range sampler.Samples() {
			fmt.Printf("  round %8d  φ=%d\n", s.Round, s.Potential)
		}
	}
	printProfile(sim)
	return nil
}

// printProfile renders the -profile post-run summary. Every line is
// prefixed "profile:" so scripted consumers comparing result tables
// across profiled and unprofiled runs (the determinism-matrix target)
// can strip the timing — the only output that legitimately varies —
// with a single grep.
func printProfile(sim *mobilegossip.Simulation) {
	p := sim.Profiler()
	if p == nil || p.Rounds() == 0 {
		return
	}
	d := func(ns int64) time.Duration { return time.Duration(ns) }
	rl := p.RoundLatency()
	fmt.Printf("profile: %d rounds, latency p50 ≤%v p95 ≤%v p99 ≤%v, health %s\n",
		p.Rounds(), d(rl.Quantile(0.50)), d(rl.Quantile(0.95)), d(rl.Quantile(0.99)),
		sim.Health())
	var phaseSum int64
	for _, ph := range mobilegossip.ProfilePhases() {
		phaseSum += p.PhaseLatency(ph).Sum()
	}
	if phaseSum > 0 {
		fmt.Printf("profile: phase shares")
		for _, ph := range mobilegossip.ProfilePhases() {
			fmt.Printf("  %s %.1f%%", ph, 100*float64(p.PhaseLatency(ph).Sum())/float64(phaseSum))
		}
		fmt.Println()
	}
	if imb := p.Imbalance(); imb.Count() > 0 {
		fmt.Printf("profile: shard imbalance p50 ≤%.2fx, barrier wait p95 ≤%v (total %v)\n",
			float64(imb.Quantile(0.50))/1000,
			d(p.BarrierWait().Quantile(0.95)), d(p.BarrierWait().Sum()))
	}
	if cw := p.CheckpointWrite(); cw.Count() > 0 {
		fmt.Printf("profile: %d checkpoint writes, p50 ≤%v\n", cw.Count(), d(cw.Quantile(0.50)))
	}
}

// parseIntList parses "64" or "64,128,256" into positive ints.
func parseIntList(name, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-%s: %q is not a positive integer list", name, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func tauString(tau int) string {
	if tau <= 0 {
		return "∞"
	}
	return fmt.Sprintf("%d", tau)
}
