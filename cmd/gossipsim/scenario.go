package main

// The `gossipsim run` subcommand: execute a declarative scenario file
// (DESIGN.md §15) — locally or against a gossipd daemon — instead of
// assembling a run from individual flags.

import (
	"flag"
	"fmt"
	"os"

	"mobilegossip/internal/scenario"
)

// runScenario implements `gossipsim run [flags] scenario.yaml`.
func runScenario(args []string) error {
	fs := flag.NewFlagSet("gossipsim run", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: gossipsim run [flags] scenario.yaml")
		fmt.Fprintln(fs.Output(), "")
		fmt.Fprintln(fs.Output(), "Executes a declarative scenario file (YAML or JSON, version 1): seed,")
		fmt.Fprintln(fs.Output(), "algorithm, topology and adversary knobs, phased timelines that rebind")
		fmt.Fprintln(fs.Output(), "the topology mid-run, parameter grids, and expected-outcome assertions")
		fmt.Fprintln(fs.Output(), "evaluated after the run (a violated assertion exits nonzero). Output is")
		fmt.Fprintln(fs.Output(), "byte-identical across engine workers and local vs -remote execution;")
		fmt.Fprintln(fs.Output(), "progress notices go to stderr so stdout stays comparable.")
		fmt.Fprintln(fs.Output(), "")
		fs.PrintDefaults()
	}
	var (
		remoteF  = fs.String("remote", "", "run against the gossipd daemon at this address (host:port) instead of in-process")
		engineW  = fs.Int("engineworkers", 0, "shard-parallel engine workers: 0 = auto, 1 = sequential, >=2 exact; results identical at any value")
		eventsF  = fs.String("events", "", "write the session's events as JSONL to this file (single runs only)")
		ckptFile = fs.String("checkpoint", "", "write a checkpoint to this file at round -checkpointat, then keep running (single runs only)")
		ckptAt   = fs.Int("checkpointat", 0, "round at which -checkpoint snapshots the run (0 = when the run finishes)")
		resumeF  = fs.String("resume", "", "resume from this checkpoint file; remaining phase boundaries still apply")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("gossipsim run: expected exactly one scenario file, got %d arguments", fs.NArg())
	}
	return scenario.RunFile(fs.Arg(0), scenario.Options{
		Remote:         *remoteF,
		EngineWorkers:  *engineW,
		EventsPath:     *eventsF,
		CheckpointPath: *ckptFile,
		CheckpointAt:   *ckptAt,
		ResumePath:     *resumeF,
		Out:            os.Stdout,
		Log:            os.Stderr,
	})
}
