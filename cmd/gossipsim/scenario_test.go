package main

// CLI-level tests for `gossipsim run`: a violated expect block (or any
// other scenario failure) must surface as a non-nil error from run(), so
// main exits nonzero — scenario files are usable as CI assertions.

import (
	"errors"
	"strings"
	"testing"

	"mobilegossip/internal/scenario"
)

func TestRunScenarioExitsNonzeroOnAssertionFailure(t *testing.T) {
	err := run([]string{"run", "testdata/bad-expect.yaml"})
	var aerr *scenario.AssertionError
	if !errors.As(err, &aerr) {
		t.Fatalf("run should fail with *scenario.AssertionError, got %T: %v", err, err)
	}
	for _, sub := range []string{`scenario "bad-expect"`, "seed 6", "solved_by"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("failure %q missing %q", err, sub)
		}
	}
}

func TestRunScenarioArgErrors(t *testing.T) {
	if err := run([]string{"run"}); err == nil ||
		!strings.Contains(err.Error(), "exactly one scenario file") {
		t.Errorf("run with no file should error, got %v", err)
	}
	if err := run([]string{"run", "testdata/nope.yaml"}); err == nil {
		t.Error("run on a missing file should error")
	}
	if err := run([]string{"run", "-checkpointat", "x", "testdata/bad-expect.yaml"}); err == nil {
		t.Error("a bad flag value should error")
	}
}
