package main

import (
	"strconv"
	"strings"
	"testing"
)

// FuzzParseIntList fuzzes the sweep-list flag parser: any input either
// yields a list of positive ints matching the comma fields, or an error —
// never a panic, never a zero/negative size smuggled into a sweep.
func FuzzParseIntList(f *testing.F) {
	for _, s := range []string{"64", "64,128,256", " 8 , 16 ", "", ",", "0", "-3",
		"1e9", "99999999999999999999", "64,,128", "\x00", strings.Repeat("9", 400)} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, err := parseIntList("n", s)
		if err != nil {
			if got != nil {
				t.Fatal("error return carried a partial list")
			}
			return
		}
		fields := strings.Split(s, ",")
		if len(got) != len(fields) {
			t.Fatalf("%q: %d values from %d fields", s, len(got), len(fields))
		}
		for i, v := range got {
			if v <= 0 {
				t.Fatalf("%q: non-positive value %d accepted", s, v)
			}
			want, err := strconv.Atoi(strings.TrimSpace(fields[i]))
			if err != nil || want != v {
				t.Fatalf("%q: field %d parsed as %d (want %d, %v)", s, i, v, want, err)
			}
		}
	})
}

// TestRunFlagErrors pins the CLI error paths the fuzzers cannot reach
// through parseIntList alone.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "nope"},
		{"-graph", "nope"},
		{"-adversary", "nope"},
		{"-adversary", "cutrich", "-advbudget", "-1"},
		{"-n", "0"},
		{"-k", "x"},
		{"-trace", "1", "-trials", "2"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
