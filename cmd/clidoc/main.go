// Command clidoc generates docs/cli.md, the flag reference for this
// module's CLIs, from the tools' own flag definitions: it runs each
// command with -h and captures the usage text the flag package renders,
// so the reference cannot drift from the code without the diff showing.
//
// Usage:
//
//	go run ./cmd/clidoc -out docs/cli.md          # (re)generate
//	go run ./cmd/clidoc -check docs/cli.md        # verify, exit 1 on drift
//
// `make docs` wraps the first form, `make docs-verify` the second; CI
// runs docs-verify in the build job so a flag added, removed, or
// reworded without regenerating the reference fails the pipeline.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
)

// tools lists the documented commands in reference order with the
// one-line summaries the generated page shows. A name may carry a
// subcommand ("gossipsim run"). Adding a CLI? Add it here and run
// `make docs`.
var tools = []struct{ name, summary string }{
	{"gossipsim", "run gossip simulations (single sessions, sweeps, checkpoints, events, metrics; -remote drives a gossipd)"},
	{"gossipsim run", "execute a declarative scenario file: phased timelines, parameter grids, expected-outcome assertions (DESIGN.md §15)"},
	{"gossipd", "serve concurrent simulation sessions over HTTP with checkpoint-backed eviction"},
	{"graphinfo", "report topology structure (Δ, D, α) and dynamic-schedule churn"},
	{"benchtable", "regenerate the paper's evaluation tables (experiments E1..E27)"},
	{"traceview", "summarize a -tracefile JSONL proposal/connection trace (or, with -events, a session-event file)"},
	{"runreport", "analyze a -events JSONL file: latency percentiles, phase breakdown, convergence verdict"},
	{"benchgate", "compare a benchmark run against the committed baseline (CI regression gate)"},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clidoc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clidoc", flag.ContinueOnError)
	var (
		out   = fs.String("out", "docs/cli.md", "write the generated reference to this file")
		check = fs.String("check", "", "verify this file matches the generated reference instead of writing; exit 1 on drift")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed by the FlagSet
		}
		return err
	}

	doc, err := generate()
	if err != nil {
		return err
	}
	if *check != "" {
		committed, err := os.ReadFile(*check)
		if err != nil {
			return fmt.Errorf("reading committed reference: %w (run `make docs` to create it)", err)
		}
		if !bytes.Equal(committed, doc) {
			return fmt.Errorf("%s is out of date with the CLIs' flag definitions: run `make docs` and commit the result", *check)
		}
		fmt.Printf("clidoc: %s matches the flag definitions of %d commands\n", *check, len(tools))
		return nil
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("clidoc: wrote %s (%d commands)\n", *out, len(tools))
	return nil
}

// generate builds the full markdown document from live -h output.
func generate() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(`# CLI reference

<!-- GENERATED FILE — DO NOT EDIT BY HAND. -->

This reference is generated from the commands' own flag definitions by
` + "`make docs` (`go run ./cmd/clidoc`)" + `: each section below is the
verbatim -h output of the tool it documents. CI runs ` + "`make docs-verify`" + `,
which regenerates the document and fails the build if this file drifts
from the code — so what you read here is what the binaries accept.

Worked examples live in the README ("Quick start", "Observability") and
in each command's package documentation (` + "`go doc ./cmd/<tool>`" + `).
`)
	for _, t := range tools {
		usage, err := captureUsage(t.name)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&buf, "\n## %s\n\n%s\n\n```text\n%s```\n", t.name, t.summary, usage)
	}
	return buf.Bytes(), nil
}

// captureUsage runs the tool with -h and returns the usage text the
// flag package prints. Words after the first are subcommands passed
// through before -h. The tools exit 0 on -h, so any failure here is a
// real build or runtime error.
func captureUsage(tool string) ([]byte, error) {
	words := strings.Fields(tool)
	args := append([]string{"run", "./cmd/" + words[0]}, words[1:]...)
	cmd := exec.Command("go", append(args, "-h")...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("%s -h: %w\n%s", tool, err, out)
	}
	return out, nil
}
