// Command graphinfo prints the structural properties the paper's bounds
// are parameterized by — n, max degree Δ, diameter D, and vertex expansion
// α — for the built-in topology families, and, for dynamic schedules, the
// per-round edge-churn statistics (edges added/removed per change, the
// effective stability factor actually exhibited) that the static numbers
// cannot capture.
//
// Usage:
//
//	graphinfo -graph doublestar -n 32
//	graphinfo -graph regular -degree 4 -n 16,32,64,128
//	graphinfo -all -n 24
//	graphinfo -graph waypoint -n 256 -tau 1 -speed 0.02 -rounds 64
//	graphinfo -graph regular -n 64 -tau 4 -rounds 64
//	graphinfo -graph regular -n 128 -tau 1 -adversary bridges -rounds 64
//
// For n ≤ 22 the vertex expansion is computed exactly by subset
// enumeration; above that a randomized local-search estimate (an upper
// bound on α) is reported and marked "~". With -tau ≥ 1 a second table
// follows: the schedule is replayed for -rounds rounds and its churn is
// tallied — through dyngraph.DeltaFor for delta-capable schedules (the
// mobility models), by graph diffing for the regenerating ones.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"mobilegossip"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphinfo", flag.ContinueOnError)
	var (
		graphName = fs.String("graph", "regular", "topology family (see cmd/gossipsim)")
		ns        = fs.String("n", "64", "comma-separated network sizes")
		degree    = fs.Int("degree", 4, "degree for -graph regular")
		p         = fs.Float64("p", 0, "edge probability for -graph gnp")
		seed      = fs.Uint64("seed", 1, "seed for randomized families and α estimation")
		all       = fs.Bool("all", false, "print every family at the first -n size")
		samples   = fs.Int("samples", 2000, "samples for the α estimate on large graphs")
		tau       = fs.Int("tau", 0, "stability factor; >= 1 adds the dynamic churn table")
		rounds    = fs.Int("rounds", 64, "rounds to replay for the churn table")
		radius    = fs.Float64("radius", 0, "radio range / rgg radius (0 = default)")
		speed     = fs.Float64("speed", 0, "mobility motion step (0 = default 0.01; negative = frozen)")
		pause     = fs.Int("pause", 0, "waypoint dwell (0 = default 2)")
		levyAlpha = fs.Float64("levyalpha", 0, "Lévy tail exponent (0 = default 1.6)")
		groups    = fs.Int("groups", 0, "group attractor count (0 = default 4)")
		attract   = fs.Float64("attract", 0, "gathering intensity (0 = default 0.6; negative = 0)")
		period    = fs.Int("period", 0, "commuter cycle in rounds (0 = default 64)")
		advName   = fs.String("adversary", "none", "adversarial strategy layered over -graph: "+strings.Join(mobilegossip.AdversaryKindNames(), "|"))
		advBudget = fs.Int("advbudget", 0, "max edges the adversary may cut per epoch (0 = unlimited)")
		advParts  = fs.Int("advparts", 0, "adversary partition count (0 = default: 4 groups/regions, topk 3)")
		advPeriod = fs.Int("advperiod", 0, "blackout/partition event cycle in epochs (0 = default 8)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed by the FlagSet
		}
		return err
	}

	sizes, err := parseSizes(*ns)
	if err != nil {
		return err
	}

	adv, err := mobilegossip.ParseAdversaryKind(*advName)
	if err != nil {
		return err
	}

	mkTopo := func(kindName string) (mobilegossip.Topology, error) {
		kind, err := mobilegossip.ParseTopologyKind(kindName)
		if err != nil {
			return mobilegossip.Topology{}, err
		}
		return mobilegossip.Topology{
			Kind: kind, Degree: *degree, P: *p, Radius: *radius,
			Speed: *speed, Pause: *pause, LevyAlpha: *levyAlpha,
			Groups: *groups, Attract: *attract, Period: *period,
			Adversary: adv, AdvBudget: *advBudget,
			AdvParts: *advParts, AdvPeriod: *advPeriod,
		}, nil
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tn\tedges\tΔ\tD\tα\tlog(n)/α")

	type churnRow struct {
		name string
		n    int
		c    dyngraph.Churn
	}
	var churns []churnRow

	emit := func(kindName string, n int) error {
		topo, err := mkTopo(kindName)
		if err != nil {
			return err
		}
		dyn, err := topo.Build(n, *tau, *seed)
		if err != nil {
			return err
		}
		g := dyn.At(1)
		if err := printRow(tw, g, *samples, *seed); err != nil {
			return err
		}
		if *tau >= 1 && *rounds >= 2 {
			// Replay a fresh schedule for the churn tally: MeasureChurn
			// advances stateful schedules, so it gets its own instance.
			cdyn, err := topo.Build(n, *tau, *seed)
			if err != nil {
				return err
			}
			churns = append(churns, churnRow{g.Name(), n, dyngraph.MeasureChurn(cdyn, *rounds)})
		}
		return nil
	}

	if *all {
		for _, name := range []string{
			"cycle", "path", "complete", "star", "doublestar",
			"grid", "gnp", "regular", "barbell",
		} {
			if err := emit(name, sizes[0]); err != nil {
				fmt.Fprintf(tw, "%s\t%d\t-\t-\t-\t%v\t-\n", name, sizes[0], err)
			}
		}
	} else {
		for _, n := range sizes {
			if err := emit(*graphName, n); err != nil {
				return err
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if len(churns) > 0 {
		fmt.Printf("\nchurn over rounds 1..%d (τ=%d):\n", *rounds, *tau)
		ctw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(ctw, "graph\tn\tchanges\t+edges/chg\t-edges/chg\tτ_eff\tedges[min,max]")
		for _, cr := range churns {
			c := cr.c
			addPer, remPer := 0.0, 0.0
			if c.Changes > 0 {
				addPer = float64(c.Added) / float64(c.Changes)
				remPer = float64(c.Removed) / float64(c.Changes)
			}
			fmt.Fprintf(ctw, "%s\t%d\t%d\t%.1f\t%.1f\t%s\t[%d,%d]\n",
				cr.name, cr.n, c.Changes, addPer, remPer,
				tauEffString(c.EffectiveTau), c.MinEdges, c.MaxEdges)
		}
		if err := ctw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func tauEffString(tau int) string {
	if tau == dyngraph.Infinite {
		return "∞"
	}
	return strconv.Itoa(tau)
}

func printRow(tw *tabwriter.Writer, g *graph.Graph, samples int, seed uint64) error {
	diam, err := g.Diameter()
	if err != nil {
		return err
	}
	alpha, exact := g.ExactVertexExpansion()
	marker := ""
	if !exact {
		alpha = g.EstimateVertexExpansion(samples, prand.New(prand.Mix64(seed^0xd1b54a32d192ed03)))
		marker = "~"
	}
	logOverAlpha := 0.0
	if alpha > 0 {
		logOverAlpha = math.Log2(float64(g.N())) / alpha
	}
	fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s%.4f\t%.1f\n",
		g.Name(), g.N(), g.NumEdges(), g.MaxDegree(), diam, marker, alpha, logOverAlpha)
	return nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}
