// Command graphinfo prints the structural properties the paper's bounds
// are parameterized by — n, max degree Δ, diameter D, and vertex expansion
// α — for the built-in topology families.
//
// Usage:
//
//	graphinfo -graph doublestar -n 32
//	graphinfo -graph regular -degree 4 -n 16,32,64,128
//	graphinfo -all -n 24
//
// For n ≤ 22 the vertex expansion is computed exactly by subset
// enumeration; above that a randomized local-search estimate (an upper
// bound on α) is reported and marked "~".
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"mobilegossip"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/prand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphinfo", flag.ContinueOnError)
	var (
		graphName = fs.String("graph", "regular", "topology family (see cmd/gossipsim)")
		ns        = fs.String("n", "64", "comma-separated network sizes")
		degree    = fs.Int("degree", 4, "degree for -graph regular")
		p         = fs.Float64("p", 0, "edge probability for -graph gnp")
		seed      = fs.Uint64("seed", 1, "seed for randomized families and α estimation")
		all       = fs.Bool("all", false, "print every family at the first -n size")
		samples   = fs.Int("samples", 2000, "samples for the α estimate on large graphs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sizes, err := parseSizes(*ns)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tn\tedges\tΔ\tD\tα\tlog(n)/α")

	emit := func(kindName string, n int) error {
		kind, err := mobilegossip.ParseTopologyKind(kindName)
		if err != nil {
			return err
		}
		topo := mobilegossip.Topology{Kind: kind, Degree: *degree, P: *p}
		dyn, err := topo.Build(n, 0, *seed)
		if err != nil {
			return err
		}
		g := dyn.At(1)
		return printRow(tw, g, *samples, *seed)
	}

	if *all {
		for _, name := range []string{
			"cycle", "path", "complete", "star", "doublestar",
			"grid", "gnp", "regular", "barbell",
		} {
			if err := emit(name, sizes[0]); err != nil {
				fmt.Fprintf(tw, "%s\t%d\t-\t-\t-\t%v\t-\n", name, sizes[0], err)
			}
		}
	} else {
		for _, n := range sizes {
			if err := emit(*graphName, n); err != nil {
				return err
			}
		}
	}
	return tw.Flush()
}

func printRow(tw *tabwriter.Writer, g *graph.Graph, samples int, seed uint64) error {
	diam, err := g.Diameter()
	if err != nil {
		return err
	}
	alpha, exact := g.ExactVertexExpansion()
	marker := ""
	if !exact {
		alpha = g.EstimateVertexExpansion(samples, prand.New(prand.Mix64(seed^0xd1b54a32d192ed03)))
		marker = "~"
	}
	logOverAlpha := 0.0
	if alpha > 0 {
		logOverAlpha = math.Log2(float64(g.N())) / alpha
	}
	fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s%.4f\t%.1f\n",
		g.Name(), g.N(), g.NumEdges(), g.MaxDegree(), diam, marker, alpha, logOverAlpha)
	return nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}
