package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mobilegossip"
	"mobilegossip/internal/events"
)

func TestPercentileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}, {1.0, 100},
	} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(q=%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := percentile([]int64{42}, 0.99); got != 42 {
		t.Errorf("single-sample percentile = %d, want 42", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d, want 0", got)
	}
}

// TestBuildSyntheticStream feeds a hand-built event sequence through the
// analyzer and checks every counter, the drop detection (a gap in the
// round numbers), and the exact percentile arithmetic.
func TestBuildSyntheticStream(t *testing.T) {
	evs := []events.Event{
		{Type: events.TypeSessionStart, Round: 0, N: 64, K: 8, Algorithm: "sharedbit", Topology: "ring"},
		{Type: events.TypeChurnApplied, Round: 1, EdgesAdded: 3, EdgesRemoved: 2},
		{Type: events.TypeRoundCompleted, Round: 1, Potential: 90, Connections: 10, TokensMoved: 4},
		{Type: events.TypeRoundProfile, Round: 1, RoundNanos: 1000, ChurnNanos: 100,
			ProposalNanos: 500, ExchangeNanos: 300, ReductionNanos: 50,
			Workers: 4, ImbalanceMilli: 1500, BarrierNanos: 200, Health: "converging"},
		{Type: events.TypeRoundCompleted, Round: 2, Potential: 80, Connections: 10, TokensMoved: 4},
		{Type: events.TypeRoundProfile, Round: 2, RoundNanos: 3000, ChurnNanos: 100,
			ProposalNanos: 2000, ExchangeNanos: 700, ReductionNanos: 100,
			Workers: 4, ImbalanceMilli: 1100, BarrierNanos: 400, Health: "converging"},
		// rounds 3 and 4 dropped by a slow sink
		{Type: events.TypeRoundCompleted, Round: 5, Potential: 40, Done: false},
		{Type: events.TypeCheckpointWritten, Round: 5, WriteNanos: 7000},
		{Type: events.TypeRoundCompleted, Round: 6, Potential: 0, Done: true},
		{Type: events.TypeSessionEnd, Round: 6, Potential: 0, Solved: true},
	}
	rep := build(evs, 0, 0)

	if rep.Events != len(evs) || rep.Rounds != 4 || rep.DroppedRounds != 2 {
		t.Fatalf("events/rounds/dropped = %d/%d/%d, want %d/4/2", rep.Events, rep.Rounds, rep.DroppedRounds, len(evs))
	}
	if !rep.Solved || rep.FinalPotential != 0 {
		t.Fatalf("solved/φ = %v/%d", rep.Solved, rep.FinalPotential)
	}
	if rep.Algorithm != "sharedbit" || rep.N != 64 || rep.K != 8 {
		t.Fatalf("identity %q n=%d k=%d", rep.Algorithm, rep.N, rep.K)
	}
	if rep.EdgesAdded != 3 || rep.EdgesRemoved != 2 {
		t.Fatalf("churn +%d/-%d", rep.EdgesAdded, rep.EdgesRemoved)
	}
	if rep.Checkpoints != 1 || rep.CheckpointNs == nil || rep.CheckpointNs.P50Ns != 7000 {
		t.Fatalf("checkpoint stats %+v", rep.CheckpointNs)
	}
	if rep.ProfiledRounds != 2 || rep.RoundLatency == nil {
		t.Fatalf("profiled rounds %d", rep.ProfiledRounds)
	}
	// Two samples {1000, 3000}: nearest-rank p50 is 1000, p95/p99/max 3000.
	l := rep.RoundLatency
	if l.P50Ns != 1000 || l.P95Ns != 3000 || l.P99Ns != 3000 || l.MaxNs != 3000 || l.TotalNs != 4000 {
		t.Fatalf("round latency %+v", l)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("%d phase rows", len(rep.Phases))
	}
	// Proposal dominates: 2500 of the 3850 attributed ns.
	if p := rep.Phases[1]; p.Phase != "proposal" || p.TotalNs != 2500 {
		t.Fatalf("proposal row %+v", p)
	}
	if rep.Shards == nil || rep.Shards.Workers != 4 || rep.Shards.Rounds != 2 ||
		rep.Shards.ImbalanceMaxMilli != 1500 || rep.Shards.BarrierTotalNs != 600 {
		t.Fatalf("shard stats %+v", rep.Shards)
	}
	// φ dropped on the final observed round: converging, agreeing with
	// the recorded live health.
	if rep.Verdict != "converging" || rep.LiveHealth != "converging" {
		t.Fatalf("verdict %q live %q", rep.Verdict, rep.LiveHealth)
	}
}

// TestVerdictReplayDetectsStall pins the plateau/stall classification on
// a synthetic flat potential curve and the threshold flags.
func TestVerdictReplayDetectsStall(t *testing.T) {
	var evs []events.Event
	for r := 1; r <= 30; r++ {
		evs = append(evs, events.Event{Type: events.TypeRoundCompleted, Round: r, Potential: 50})
	}
	if rep := build(evs, 0, 0); rep.Verdict != "converging" {
		t.Fatalf("default thresholds on 30 flat rounds: %q, want converging", rep.Verdict)
	}
	if rep := build(evs, 8, 20); rep.Verdict != "stalled" {
		t.Fatalf("window=8 stallafter=20 on 30 flat rounds: %q, want stalled", rep.Verdict)
	}
	if rep := build(evs[:15], 8, 20); rep.Verdict != "plateaued" {
		t.Fatalf("window=8 stallafter=20 on 15 flat rounds: %q, want plateaued", rep.Verdict)
	}
	if rep := build(nil, 0, 0); rep.Verdict != "unknown" {
		t.Fatalf("empty stream verdict %q, want unknown", rep.Verdict)
	}
}

// TestReportOnRealRunReproducible drives a real profiled sharded session
// into a JSONL file, then runs the full command twice over it — text and
// JSON — checking the outputs are byte-identical across invocations (the
// reproducibility contract) and agree with the session's Result.
func TestReportOnRealRunReproducible(t *testing.T) {
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 128, K: 16,
		Topology: mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint},
		Tau:      1, Seed: 17,
		Profile:       true,
		EngineWorkers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := mobilegossip.NewJSONLSink(sim.Bus(), f, mobilegossip.EventFilter{}, 1<<16)
	res, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	render := func(args ...string) string {
		var out bytes.Buffer
		if err := run(append(args, path), &out); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return out.String()
	}
	text1, text2 := render(), render()
	if text1 != text2 {
		t.Fatal("text report differs between two runs over the same file")
	}
	js1, js2 := render("-json"), render("-json")
	if js1 != js2 {
		t.Fatal("JSON report differs between two runs over the same file")
	}

	var rep Report
	if err := json.Unmarshal([]byte(js1), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != res.Rounds || rep.ProfiledRounds != res.Rounds || rep.DroppedRounds != 0 {
		t.Fatalf("rounds %d profiled %d dropped %d, Result says %d",
			rep.Rounds, rep.ProfiledRounds, rep.DroppedRounds, res.Rounds)
	}
	if rep.Solved != res.Solved || rep.Connections != res.Connections || rep.TokensMoved != res.TokensMoved {
		t.Fatalf("report %+v disagrees with Result %+v", rep, res)
	}
	if rep.Shards == nil || rep.Shards.Workers != 3 {
		t.Fatalf("shard stats %+v, want workers=3", rep.Shards)
	}
	// The replayed verdict must match what the live session reported.
	if rep.Verdict != rep.LiveHealth {
		t.Fatalf("replayed verdict %q != live health %q", rep.Verdict, rep.LiveHealth)
	}
	if res.Solved && rep.Verdict != "converging" {
		t.Fatalf("solved run verdict %q", rep.Verdict)
	}
}

// TestRunFlagErrors pins the CLI error paths.
func TestRunFlagErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"v\":99,\"type\":\"round_completed\",\"round\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{},                                   // missing file
		{"a.jsonl", "b.jsonl"},               // too many files
		{filepath.Join(dir, "absent.jsonl")}, // unreadable
		{bad},                                // unsupported schema version
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
