// Command runreport turns a JSONL session-event file (gossipsim -events,
// or any mobilegossip.EventJSONLSink stream) into a post-run report:
// round-latency percentiles, a per-phase breakdown, shard-balance and
// barrier-wait summaries, churn/checkpoint/drop counts, and the stall
// detector's convergence verdict replayed from the recorded potential
// curve — the same pure function of (round, φ) the live session runs, so
// the report's verdict matches what -metrics served during the run.
//
// Every number is computed exactly from the recorded events (percentiles
// are nearest-rank over the sorted samples, not histogram estimates), so
// repeated invocations over the same file reproduce identical tables.
//
// Usage:
//
//	gossipsim -alg sharedbit -graph waypoint -n 5000 -k 8 -tau 1 \
//	    -profile -events run.jsonl
//	runreport run.jsonl
//	runreport -json run.jsonl          # machine-readable form
//	runreport -window 32 run.jsonl     # tighter plateau threshold
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"mobilegossip/internal/events"
	"mobilegossip/internal/profile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "runreport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("runreport", flag.ContinueOnError)
	var (
		asJSON     = fs.Bool("json", false, "emit the report as a JSON document instead of text")
		window     = fs.Int("window", 0, "stall-detector plateau window in rounds (0 = default 64)")
		stallAfter = fs.Int("stallafter", 0, "stall-detector stall threshold in rounds (0 = default 256)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed by the FlagSet
		}
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: runreport [-json] [-window N] [-stallafter N] <events.jsonl>")
	}

	r := io.Reader(os.Stdin)
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	evs, err := events.ReadAll(r)
	if err != nil {
		return err
	}

	rep := build(evs, *window, *stallAfter)
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return writeText(out, rep)
}

// Report is the full analysis of one event stream. The JSON form is the
// -json output; the text renderer reads the same struct.
type Report struct {
	// Stream shape.
	Events int `json:"events"`

	// Session identity (from session_start; empty when the stream has
	// none, e.g. a filtered sink).
	Algorithm string `json:"algorithm,omitempty"`
	Topology  string `json:"topology,omitempty"`
	N         int    `json:"n,omitempty"`
	K         int    `json:"k,omitempty"`

	// Round accounting from round_completed events.
	Rounds         int   `json:"rounds"`
	DroppedRounds  int   `json:"dropped_rounds"`
	Solved         bool  `json:"solved"`
	FinalPotential int   `json:"final_potential"`
	Connections    int64 `json:"connections"`
	TokensMoved    int64 `json:"tokens_moved"`

	// Lifecycle counters.
	EdgesAdded   int64 `json:"edges_added"`
	EdgesRemoved int64 `json:"edges_removed"`
	Checkpoints  int   `json:"checkpoints"`
	Resumes      int   `json:"resumes"`
	Cancels      int   `json:"cancels"`

	// Timing analysis, present when the stream carries round_profile
	// events (a profiled session).
	ProfiledRounds int           `json:"profiled_rounds"`
	RoundLatency   *LatencyStats `json:"round_latency,omitempty"`
	Phases         []PhaseStats  `json:"phases,omitempty"`
	Shards         *ShardStats   `json:"shards,omitempty"`
	CheckpointNs   *LatencyStats `json:"checkpoint_write,omitempty"`

	// Verdict is the stall detector's final health replayed over the
	// recorded (round, φ) curve: converging, plateaued, stalled — or
	// unknown on a stream with no completed rounds.
	Verdict string `json:"verdict"`
	// LiveHealth is the last health the running session reported in a
	// round_profile event (empty for unprofiled streams). With default
	// detector thresholds it agrees with Verdict.
	LiveHealth string `json:"live_health,omitempty"`
}

// LatencyStats summarizes one duration sample set with exact
// nearest-rank percentiles.
type LatencyStats struct {
	Count   int   `json:"count"`
	P50Ns   int64 `json:"p50_ns"`
	P95Ns   int64 `json:"p95_ns"`
	P99Ns   int64 `json:"p99_ns"`
	MaxNs   int64 `json:"max_ns"`
	TotalNs int64 `json:"total_ns"`
}

// PhaseStats is one row of the phase-breakdown table.
type PhaseStats struct {
	Phase   string  `json:"phase"`
	TotalNs int64   `json:"total_ns"`
	Share   float64 `json:"share"` // of the summed phase time, 0..1
	P50Ns   int64   `json:"p50_ns"`
	P95Ns   int64   `json:"p95_ns"`
}

// ShardStats summarizes the sharded rounds of the stream (absent when
// every profiled round ran sequentially).
type ShardStats struct {
	Workers           int   `json:"workers"` // largest worker count seen
	Rounds            int   `json:"rounds"`  // sharded rounds
	ImbalanceP50Milli int64 `json:"imbalance_p50_milli"`
	ImbalanceMaxMilli int64 `json:"imbalance_max_milli"`
	BarrierP50Ns      int64 `json:"barrier_p50_ns"`
	BarrierP95Ns      int64 `json:"barrier_p95_ns"`
	BarrierTotalNs    int64 `json:"barrier_total_ns"`
}

// build computes the report. It is a pure function of the event slice
// and the detector thresholds, which is what makes runreport's output
// reproducible run over run.
func build(evs []events.Event, window, stallAfter int) Report {
	rep := Report{Events: len(evs)}
	det := profile.NewStallDetector(window, stallAfter)

	var (
		roundNs, churnNs, propNs, exchNs, redNs []int64
		imbalance, barrier, ckptNs              []int64
		shardRounds, maxWorkers                 int
		lastRound                               = -1
	)
	for _, ev := range evs {
		switch ev.Type {
		case events.TypeSessionStart:
			rep.Algorithm, rep.Topology = ev.Algorithm, ev.Topology
			rep.N, rep.K = ev.N, ev.K
			if lastRound < 0 {
				lastRound = ev.Round
			}
		case events.TypeCheckpointResumed:
			rep.Resumes++
		case events.TypeRoundCompleted:
			rep.Rounds++
			rep.FinalPotential = ev.Potential
			rep.Solved = ev.Done
			rep.Connections += ev.Connections
			rep.TokensMoved += ev.TokensMoved
			if lastRound >= 0 && ev.Round > lastRound+1 {
				rep.DroppedRounds += ev.Round - lastRound - 1
			}
			lastRound = ev.Round
			rep.Verdict = det.Observe(ev.Round, ev.Potential).String()
		case events.TypeChurnApplied:
			rep.EdgesAdded += int64(ev.EdgesAdded)
			rep.EdgesRemoved += int64(ev.EdgesRemoved)
		case events.TypeCheckpointWritten:
			rep.Checkpoints++
			if ev.WriteNanos > 0 {
				ckptNs = append(ckptNs, ev.WriteNanos)
			}
		case events.TypeSessionCancel:
			rep.Cancels++
		case events.TypeSessionEnd:
			rep.Solved = ev.Solved
			rep.FinalPotential = ev.Potential
		case events.TypeRoundProfile:
			rep.ProfiledRounds++
			rep.LiveHealth = ev.Health
			roundNs = append(roundNs, ev.RoundNanos)
			churnNs = append(churnNs, ev.ChurnNanos)
			propNs = append(propNs, ev.ProposalNanos)
			exchNs = append(exchNs, ev.ExchangeNanos)
			redNs = append(redNs, ev.ReductionNanos)
			if ev.Workers > 1 {
				shardRounds++
				imbalance = append(imbalance, ev.ImbalanceMilli)
				barrier = append(barrier, ev.BarrierNanos)
				if ev.Workers > maxWorkers {
					maxWorkers = ev.Workers
				}
			}
		}
	}
	if rep.Verdict == "" {
		rep.Verdict = profile.HealthUnknown.String()
	}

	if len(roundNs) > 0 {
		rep.RoundLatency = latencyStats(roundNs)
		phases := []struct {
			name string
			ns   []int64
		}{
			{profile.PhaseChurn.String(), churnNs},
			{profile.PhaseProposal.String(), propNs},
			{profile.PhaseExchange.String(), exchNs},
			{profile.PhaseReduction.String(), redNs},
		}
		var phaseSum int64
		for _, p := range phases {
			phaseSum += sum(p.ns)
		}
		for _, p := range phases {
			total := sum(p.ns)
			share := 0.0
			if phaseSum > 0 {
				share = float64(total) / float64(phaseSum)
			}
			sorted := sortedCopy(p.ns)
			rep.Phases = append(rep.Phases, PhaseStats{
				Phase: p.name, TotalNs: total, Share: share,
				P50Ns: percentile(sorted, 0.50), P95Ns: percentile(sorted, 0.95),
			})
		}
	}
	if shardRounds > 0 {
		imb, bar := sortedCopy(imbalance), sortedCopy(barrier)
		rep.Shards = &ShardStats{
			Workers: maxWorkers, Rounds: shardRounds,
			ImbalanceP50Milli: percentile(imb, 0.50),
			ImbalanceMaxMilli: imb[len(imb)-1],
			BarrierP50Ns:      percentile(bar, 0.50),
			BarrierP95Ns:      percentile(bar, 0.95),
			BarrierTotalNs:    sum(barrier),
		}
	}
	if len(ckptNs) > 0 {
		rep.CheckpointNs = latencyStats(ckptNs)
	}
	return rep
}

// latencyStats builds the percentile summary of one sample set.
func latencyStats(ns []int64) *LatencyStats {
	sorted := sortedCopy(ns)
	return &LatencyStats{
		Count:   len(sorted),
		P50Ns:   percentile(sorted, 0.50),
		P95Ns:   percentile(sorted, 0.95),
		P99Ns:   percentile(sorted, 0.99),
		MaxNs:   sorted[len(sorted)-1],
		TotalNs: sum(sorted),
	}
}

// percentile is the exact nearest-rank percentile of an ascending
// sorted, non-empty sample: the smallest value with at least q·n samples
// at or below it.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func sortedCopy(ns []int64) []int64 {
	out := append([]int64(nil), ns...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sum(ns []int64) int64 {
	var t int64
	for _, v := range ns {
		t += v
	}
	return t
}

// writeText renders the human-readable report.
func writeText(w io.Writer, rep Report) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if rep.Algorithm != "" {
		fmt.Fprintf(tw, "run\t%s on %s (n=%d, k=%d)\n", rep.Algorithm, rep.Topology, rep.N, rep.K)
	}
	fmt.Fprintf(tw, "events\t%d\n", rep.Events)
	fmt.Fprintf(tw, "rounds\t%d completed, %d dropped from the stream\n", rep.Rounds, rep.DroppedRounds)
	fmt.Fprintf(tw, "solved\t%v (final φ=%d)\n", rep.Solved, rep.FinalPotential)
	fmt.Fprintf(tw, "connections\t%d (%d tokens moved)\n", rep.Connections, rep.TokensMoved)
	if rep.EdgesAdded > 0 || rep.EdgesRemoved > 0 {
		fmt.Fprintf(tw, "edge churn\t+%d/-%d\n", rep.EdgesAdded, rep.EdgesRemoved)
	}
	if rep.Checkpoints > 0 || rep.Resumes > 0 || rep.Cancels > 0 {
		fmt.Fprintf(tw, "lifecycle\t%d checkpoints, %d resumes, %d cancels\n",
			rep.Checkpoints, rep.Resumes, rep.Cancels)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if rep.RoundLatency != nil {
		l := rep.RoundLatency
		fmt.Fprintf(w, "\nround latency (%d profiled rounds)\n", l.Count)
		fmt.Fprintf(w, "  p50 %v  p95 %v  p99 %v  max %v  total %v\n",
			dur(l.P50Ns), dur(l.P95Ns), dur(l.P99Ns), dur(l.MaxNs), dur(l.TotalNs))

		fmt.Fprintf(w, "\nphase breakdown\n")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  phase\ttotal\tshare\tp50\tp95")
		for _, p := range rep.Phases {
			fmt.Fprintf(tw, "  %s\t%v\t%.1f%%\t%v\t%v\n",
				p.Phase, dur(p.TotalNs), 100*p.Share, dur(p.P50Ns), dur(p.P95Ns))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if rep.Shards != nil {
		s := rep.Shards
		fmt.Fprintf(w, "\nshards (%d workers, %d sharded rounds)\n", s.Workers, s.Rounds)
		fmt.Fprintf(w, "  imbalance p50 %.2fx  max %.2fx (max/mean shard compute)\n",
			float64(s.ImbalanceP50Milli)/1000, float64(s.ImbalanceMaxMilli)/1000)
		fmt.Fprintf(w, "  barrier wait p50 %v  p95 %v  total %v\n",
			dur(s.BarrierP50Ns), dur(s.BarrierP95Ns), dur(s.BarrierTotalNs))
	}
	if rep.CheckpointNs != nil {
		c := rep.CheckpointNs
		fmt.Fprintf(w, "\ncheckpoint writes: %d, p50 %v  max %v\n", c.Count, dur(c.P50Ns), dur(c.MaxNs))
	}

	fmt.Fprintf(w, "\nverdict: %s", rep.Verdict)
	switch {
	case rep.Solved:
		fmt.Fprintf(w, " — objective reached at round %d", rep.Rounds)
	case rep.Verdict == profile.HealthStalled.String():
		fmt.Fprintf(w, " — φ stuck at %d", rep.FinalPotential)
	}
	fmt.Fprintln(w)
	if rep.LiveHealth != "" && rep.LiveHealth != rep.Verdict {
		fmt.Fprintf(w, "(live session reported %q — detector thresholds differ from this replay's)\n",
			rep.LiveHealth)
	}
	return nil
}

// dur renders nanoseconds in the usual duration notation, trimmed to
// three significant sub-unit digits so tables stay narrow.
func dur(ns int64) time.Duration {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	case d >= time.Microsecond:
		return d.Round(time.Nanosecond)
	}
	return d
}
