// Command benchgate is the CI benchmark-regression gate: it parses `go test
// -bench -benchmem` output, compares ns/op and allocs/op against a committed
// BENCH-shaped JSON baseline with a relative tolerance, and exits nonzero on
// regression — locking in the performance of the simulation core instead of
// letting it erode silently.
//
// Usage:
//
//	go test -bench=BenchmarkEngineRound -benchmem -benchtime=500x -run='^$' . |
//	    go run ./cmd/benchgate -baseline BENCH_core.json -out BENCH_core.fresh.json
//
//	go test -bench=... | go run ./cmd/benchgate -out BENCH_core.json   # (re)write a baseline
//
// Comparison rules, per baseline benchmark:
//
//   - ns/op may grow by at most -tolerance (default 0.15, i.e. ±15%).
//   - allocs/op may grow by at most the same factor — so a 0-alloc baseline
//     admits no allocation at all, pinning the engine's steady-state
//     0 allocs/op invariant.
//   - a benchmark present in the baseline but missing from the fresh run
//     fails the gate (renames must update the baseline deliberately).
//   - a benchmark present in the fresh run but missing from the baseline
//     fails the gate too, listing the added rows: new benchmarks enter the
//     gate by regenerating the baseline (make bench-baseline), never by
//     slipping past it ungated.
//   - -ratio 'ROW,BASEROW,MAX' (repeatable) additionally pins one fresh
//     row's ns/op to at most MAX × another fresh row's — both measured in
//     the same run, so the check is machine-independent. The profiling
//     overhead gate uses it: the profiled engine row may cost at most
//     1.25× the unprofiled one (see the Makefile bench-gate comment for
//     why the bound is looser than the measured overhead).
//
// The fresh results are always written to -out (when given) in the same
// BENCH JSON shape, so CI can upload them as a build artifact and a baseline
// refresh is one file copy.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchJSON is the BENCH_*.json document shape (schema-tagged like the
// sweep and benchtable documents).
type benchJSON struct {
	Schema    string     `json:"schema"`
	GoVersion string     `json:"go_version"`
	Benchtime string     `json:"benchtime,omitempty"`
	Rows      []benchRow `json:"benchmarks"`
}

type benchRow struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baseline  = fs.String("baseline", "", "baseline BENCH JSON to compare against (empty = no gate, just record)")
		out       = fs.String("out", "", "write the fresh results to this BENCH JSON file")
		input     = fs.String("input", "-", "go-test bench output to read (- = stdin)")
		tolerance = fs.Float64("tolerance", 0.15, "allowed relative growth in ns/op and allocs/op")
		benchtime = fs.String("benchtime", "", "benchtime tag recorded in the output document")
	)
	var ratios []ratioCheck
	fs.Func("ratio", "pin one fresh row's ns/op to at most MAX× another's, as 'ROW,BASEROW,MAX' (repeatable; rows named as in the BENCH JSON)", func(s string) error {
		rc, err := parseRatio(s)
		if err != nil {
			return err
		}
		ratios = append(ratios, rc)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed by the FlagSet
		}
		return err
	}

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	fresh, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	if *out != "" {
		doc := benchJSON{
			Schema:    "mobilegossip/bench-core-v1",
			GoVersion: runtime.Version(),
			Benchtime: *benchtime,
			Rows:      fresh,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(fresh), *out)
	}

	byName := make(map[string]benchRow, len(fresh))
	for _, row := range fresh {
		byName[row.Name] = row
	}
	failures := 0
	// Ratio pins compare two rows of the same fresh run, so they apply
	// with or without a baseline document.
	for _, rc := range ratios {
		got, ok1 := byName[rc.name]
		base, ok2 := byName[rc.base]
		switch {
		case !ok1 || !ok2:
			fmt.Printf("FAIL ratio %s/%s: row missing from the fresh run\n", rc.name, rc.base)
			failures++
		case base.NsPerOp <= 0:
			fmt.Printf("FAIL ratio %s/%s: base row has no ns/op\n", rc.name, rc.base)
			failures++
		case got.NsPerOp > rc.max*base.NsPerOp:
			fmt.Printf("FAIL ratio %-28s ns/op %.0f > %.2f× %s (%.0f, ratio %.3f)\n",
				rc.name, got.NsPerOp, rc.max, rc.base, base.NsPerOp, got.NsPerOp/base.NsPerOp)
			failures++
		default:
			fmt.Printf("ok   ratio %-28s ns/op %.0f ≤ %.2f× %s (ratio %.3f)\n",
				rc.name, got.NsPerOp, rc.max, rc.base, got.NsPerOp/base.NsPerOp)
		}
	}

	if *baseline == "" {
		if failures > 0 {
			return fmt.Errorf("%d ratio pin(s) failed", failures)
		}
		return nil
	}
	buf, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	var base benchJSON
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", *baseline, err)
	}
	if err := checkSchema(base.Schema); err != nil {
		return fmt.Errorf("baseline %s: %w", *baseline, err)
	}
	if len(base.Rows) == 0 {
		// A sweep document (bench-v1/v2) parses but carries "points", not
		// "benchmarks" — gating against it would pass vacuously.
		return fmt.Errorf("baseline %s contains no benchmark rows (a sweep document is not a bench baseline)", *baseline)
	}

	baseNames := make(map[string]bool, len(base.Rows))
	for _, row := range base.Rows {
		baseNames[row.Name] = true
	}
	// Fresh rows the baseline has never seen would otherwise pass silently
	// and run forever ungated; surface them as an explicit diff.
	var added []string
	for _, row := range fresh {
		if !baseNames[row.Name] {
			added = append(added, row.Name)
		}
	}
	if len(added) > 0 {
		sort.Strings(added)
		for _, name := range added {
			fmt.Printf("FAIL %-28s new benchmark missing from the baseline (regenerate with make bench-baseline)\n", name)
		}
		failures += len(added)
	}
	for _, want := range base.Rows {
		got, ok := byName[want.Name]
		if !ok {
			fmt.Printf("FAIL %-28s missing from the fresh run\n", want.Name)
			failures++
			continue
		}
		ok = true
		if lim := want.NsPerOp * (1 + *tolerance); got.NsPerOp > lim {
			fmt.Printf("FAIL %-28s ns/op %.0f > %.0f (baseline %.0f %+.1f%%)\n",
				want.Name, got.NsPerOp, lim, want.NsPerOp,
				100*(got.NsPerOp/want.NsPerOp-1))
			failures++
			ok = false
		}
		if lim := want.AllocsPerOp * (1 + *tolerance); got.AllocsPerOp > lim {
			fmt.Printf("FAIL %-28s allocs/op %.0f > baseline %.0f (tolerance admits %.1f)\n",
				want.Name, got.AllocsPerOp, want.AllocsPerOp, lim)
			failures++
			ok = false
		}
		if ok {
			fmt.Printf("ok   %-28s ns/op %.0f (baseline %.0f %+.1f%%), allocs/op %.0f\n",
				want.Name, got.NsPerOp, want.NsPerOp,
				100*(got.NsPerOp/want.NsPerOp-1), got.AllocsPerOp)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark regression(s) against %s (±%.0f%% tolerance)",
			failures, *baseline, 100**tolerance)
	}
	fmt.Printf("bench gate passed: %d benchmarks within ±%.0f%% of %s\n",
		len(base.Rows), 100**tolerance, *baseline)
	return nil
}

// acceptedSchemas are the BENCH document schemas this tool understands: its
// native bench-core documents, plus both revisions of the sweep document
// (mobilegossip.SweepSchemaV1/V2 — v2 added the sweep seed and mobility
// churn columns without touching the fields benchgate reads). An empty tag
// is tolerated for hand-written baselines.
var acceptedSchemas = map[string]bool{
	"":                           true,
	"mobilegossip/bench-core-v1": true,
	"mobilegossip/bench-v1":      true,
	"mobilegossip/bench-v2":      true,
}

// checkSchema rejects baselines from a future or foreign schema instead of
// silently comparing fields that may have changed meaning.
func checkSchema(schema string) error {
	if acceptedSchemas[schema] {
		return nil
	}
	known := make([]string, 0, len(acceptedSchemas))
	for s := range acceptedSchemas {
		if s != "" {
			known = append(known, s)
		}
	}
	sort.Strings(known)
	return fmt.Errorf("unsupported schema %q (accepted: %s)", schema, strings.Join(known, ", "))
}

// ratioCheck is one -ratio pin: the fresh ns/op of row name must be at
// most max × the fresh ns/op of row base.
type ratioCheck struct {
	name, base string
	max        float64
}

// parseRatio parses the 'ROW,BASEROW,MAX' form of the -ratio flag.
func parseRatio(s string) (ratioCheck, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return ratioCheck{}, fmt.Errorf("-ratio wants 'ROW,BASEROW,MAX', got %q", s)
	}
	max, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || max <= 0 {
		return ratioCheck{}, fmt.Errorf("-ratio %q: MAX %q is not a positive number", s, parts[2])
	}
	name, base := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	if name == "" || base == "" {
		return ratioCheck{}, fmt.Errorf("-ratio %q: empty row name", s)
	}
	return ratioCheck{name: name, base: base, max: max}, nil
}

// benchLine matches `go test -bench -benchmem` result lines, e.g.
//
//	BenchmarkEngineRound/seq_n256_k32-8  500  94619 ns/op  0 B/op  0 allocs/op
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
	bytesOp   = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsOp  = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// parseBench extracts rows from go-test benchmark output. The -<GOMAXPROCS>
// suffix is stripped from names so baselines compare across machines.
func parseBench(r io.Reader) ([]benchRow, error) {
	var rows []benchRow
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		row := benchRow{
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Iterations: iters,
			NsPerOp:    ns,
		}
		rest := m[4]
		if bm := bytesOp.FindStringSubmatch(rest); bm != nil {
			row.BytesPerOp, _ = strconv.ParseFloat(bm[1], 64)
		}
		if am := allocsOp.FindStringSubmatch(rest); am != nil {
			row.AllocsPerOp, _ = strconv.ParseFloat(am[1], 64)
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}
