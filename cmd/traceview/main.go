// Command traceview summarizes a JSONL execution trace produced by
// gossipsim -tracefile (or any mobilegossip.Config.TraceWriter sink):
// per-round proposals, accepted connections, metered control bits and
// token transfers, plus run totals and the proposal-acceptance rate.
//
// Usage:
//
//	gossipsim -alg sharedbit -n 64 -k 8 -tracefile run.jsonl
//	traceview run.jsonl
//	traceview -every 10 run.jsonl    # print every 10th round only
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"mobilegossip/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	every := fs.Int("every", 1, "print every Nth round (totals always cover the whole trace)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed by the FlagSet
		}
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceview [-every N] <trace.jsonl>")
	}
	if *every < 1 {
		*every = 1
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	s, err := trace.ReadSummary(f)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "round\tproposals\tconnections\tbits\ttokens")
	for i, rs := range s.Rounds {
		if i%*every != 0 && i != len(s.Rounds)-1 {
			continue
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n",
			rs.Round, rs.Proposals, rs.Connections, rs.Bits, rs.Tokens)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Printf("\ntotals: %d proposals, %d connections (%.1f%% accepted), %d control bits, %d tokens moved\n",
		s.Proposals, s.Connections, 100*s.AcceptanceRate(), s.Bits, s.Tokens)
	return nil
}
