// Command traceview summarizes a JSONL execution trace produced by
// gossipsim -tracefile (or any mobilegossip.Config.TraceWriter sink):
// per-round proposals, accepted connections, metered control bits and
// token transfers, plus run totals and the proposal-acceptance rate.
//
// With -events the input is a session-event file (gossipsim -events)
// instead of a proposal trace: the table is built from round_completed
// events — φ, connections, churn — through the same decoder cmd/runreport
// uses, so both tools accept exactly the same files.
//
// Usage:
//
//	gossipsim -alg sharedbit -n 64 -k 8 -tracefile run.jsonl
//	traceview run.jsonl
//	traceview -every 10 run.jsonl    # print every 10th round only
//	gossipsim -alg sharedbit -n 64 -k 8 -tau 1 -events ev.jsonl
//	traceview -events ev.jsonl
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"mobilegossip/internal/events"
	"mobilegossip/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	every := fs.Int("every", 1, "print every Nth round (totals always cover the whole trace)")
	asEvents := fs.Bool("events", false, "treat the input as a session-event file (gossipsim -events) instead of a proposal trace")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed by the FlagSet
		}
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceview [-every N] [-events] <trace.jsonl>")
	}
	if *every < 1 {
		*every = 1
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	if *asEvents {
		return summarizeEvents(f, *every)
	}
	s, err := trace.ReadSummary(f)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "round\tproposals\tconnections\tbits\ttokens")
	for i, rs := range s.Rounds {
		if i%*every != 0 && i != len(s.Rounds)-1 {
			continue
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n",
			rs.Round, rs.Proposals, rs.Connections, rs.Bits, rs.Tokens)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Printf("\ntotals: %d proposals, %d connections (%.1f%% accepted), %d control bits, %d tokens moved\n",
		s.Proposals, s.Connections, 100*s.AcceptanceRate(), s.Bits, s.Tokens)
	return nil
}

// summarizeEvents renders the -events view: a per-round table from the
// stream's round_completed events plus the session_end totals, decoded
// by the same events.ReadAll path cmd/runreport uses.
func summarizeEvents(f *os.File, every int) error {
	evs, err := events.ReadAll(f)
	if err != nil {
		return err
	}
	var rounds []events.Event
	var end *events.Event
	for i, ev := range evs {
		switch ev.Type {
		case events.TypeRoundCompleted:
			rounds = append(rounds, ev)
		case events.TypeSessionEnd:
			end = &evs[i]
		}
	}
	if len(rounds) == 0 {
		return fmt.Errorf("no round_completed events in %s", f.Name())
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "round\tφ\tconnections\tproposals\ttokens\tchurn")
	for i, ev := range rounds {
		if i%every != 0 && i != len(rounds)-1 {
			continue
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t+%d/-%d\n",
			ev.Round, ev.Potential, ev.Connections, ev.Proposals, ev.TokensMoved,
			ev.EdgesAdded, ev.EdgesRemoved)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	last := rounds[len(rounds)-1]
	solved, conns, tokens := last.Done, int64(0), int64(0)
	for _, ev := range rounds {
		conns += ev.Connections
		tokens += ev.TokensMoved
	}
	if end != nil {
		// session_end carries the authoritative totals (the stream may
		// have dropped rounds under backpressure).
		solved, conns, tokens = end.Solved, end.Connections, end.TokensMoved
	}
	fmt.Printf("\ntotals: %d rounds, solved=%v, final φ=%d, %d connections, %d tokens moved\n",
		last.Round, solved, last.Potential, conns, tokens)
	return nil
}
