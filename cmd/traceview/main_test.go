package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"mobilegossip"
)

// TestEventsMode drives a real run into a session-event file and checks
// the -events view accepts it (the shared-decoder contract with
// cmd/runreport) while the legacy trace path rejects it and vice versa.
func TestEventsMode(t *testing.T) {
	sim, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 64, K: 8,
		Topology: mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint},
		Tau:      1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := mobilegossip.NewJSONLSink(sim.Bus(), f, mobilegossip.EventFilter{}, 1<<16)
	if _, err := sim.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Silence the tables; run() prints to stdout.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := run([]string{"-events", path}); err != nil {
		t.Fatalf("-events on a session-event file: %v", err)
	}
	if err := run([]string{"-events", "-every", "10", path}); err != nil {
		t.Fatalf("-events -every 10: %v", err)
	}
	if err := run([]string{path}); err == nil {
		t.Fatal("legacy trace mode accepted a session-event file")
	}

	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-events", empty}); err == nil {
		t.Fatal("-events on an empty file succeeded, want error")
	}
}
