// Command gossipd serves gossip simulations as a daemon: an HTTP+JSON
// API (the v1 wire format of the client package) multiplexing many
// concurrent simulation sessions over a bounded scheduler, with idle
// sessions transparently evicted to disk checkpoints and revived on
// their next touch (DESIGN.md §14).
//
// Usage:
//
//	gossipd -addr :7373 -statedir /var/lib/gossipd
//	gossipd -addr 127.0.0.1:0 -maxlive 64 -idletimeout 30s
//
// Endpoints (all JSON unless noted):
//
//	GET    /v1/version                     API + format versions
//	POST   /v1/sessions                    create from a CreateRequest
//	GET    /v1/sessions                    list sessions
//	POST   /v1/sessions/resume             create from an uploaded checkpoint
//	GET    /v1/sessions/{id}               session state (never blocks on a stepping session)
//	DELETE /v1/sessions/{id}               delete session + on-disk state
//	POST   /v1/sessions/{id}/run           advance N rounds (<=0: to completion); long poll
//	POST   /v1/sessions/{id}/checkpoint    download checkpoint (octet-stream)
//	POST   /v1/sessions/{id}/cancel        cancel pending run jobs
//	GET    /v1/sessions/{id}/tokens?node=U token count at node U
//	GET    /v1/sessions/{id}/events        recorded event replay; ?follow=1 live-streams
//	GET    /metrics                        daemon + aggregated session metrics
//
// Drive it with the client package's typed bindings or with
// `gossipsim -remote ADDR`, which runs the same single-run commands
// (including checkpoint and resume) against a daemon with byte-identical
// output to a local run.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobilegossip/internal/daemon"
	"mobilegossip/internal/httpserve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gossipd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:7373", "listen address (host:port; :0 picks a free port)")
		stateDir    = fs.String("statedir", "gossipd-state", "directory for eviction checkpoints and recorded event logs")
		workers     = fs.Int("workers", 0, "scheduler worker pool size; 0 = GOMAXPROCS (results identical at any value)")
		maxLive     = fs.Int("maxlive", 0, "max memory-resident sessions; beyond it idle sessions are checkpointed to -statedir (0 = no cap)")
		idleTimeout = fs.Duration("idletimeout", 0, "evict sessions idle this long to disk checkpoints (0 = never)")
		slice       = fs.Int("slice", 0, "scheduler fairness quantum in rounds per slice (0 = default 64)")
		pprofFlag   = fs.Bool("pprof", false, "mount /debug/pprof on the same listener")
		addrFile    = fs.String("addrfile", "", "write the bound address to this file once listening (for scripts binding to :0)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	d, err := daemon.New(daemon.Config{
		StateDir:    *stateDir,
		Workers:     *workers,
		MaxLive:     *maxLive,
		IdleTimeout: *idleTimeout,
		SliceRounds: *slice,
	})
	if err != nil {
		return err
	}
	defer d.Close()

	mux := d.Handler()
	if *pprofFlag {
		httpserve.MountPprof(mux)
	}
	srv, err := httpserve.Start(*addr, mux)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gossipd: serving on http://%s/ (workers=%d, maxlive=%d, idletimeout=%v, statedir=%s)\n",
		srv.Addr(), d.Workers(), *maxLive, *idleTimeout, *stateDir)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			srv.Shutdown(time.Second)
			return err
		}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	fmt.Fprintln(os.Stderr, "gossipd: shutting down")
	return srv.Shutdown(5 * time.Second)
}
