package mobilegossip_test

// Public-API tests for the deterministic shard-parallel engine
// (Config.EngineWorkers) and the cache-aware Relabel knob: worker count
// must never change a result byte, sequential and parallel sessions must
// write interchangeable checkpoints, and relabeling must compose with
// sharding, regeneration and checkpoint/resume. The TestSharded* names
// double as the root-package workload `make race-concurrent` drives
// un-shortened under the race detector (n = 10k, every algorithm and
// every adversary strategy).

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mobilegossip"
)

// workerTrace is a run summary plus its full per-round potential trace,
// so engine comparisons see every round boundary rather than only totals.
type workerTrace struct {
	res mobilegossip.Result
	phi []int
}

func traceRun(t *testing.T, cfg mobilegossip.Config) workerTrace {
	t.Helper()
	var tr workerTrace
	cfg.OnRound = func(round, potential int) { tr.phi = append(tr.phi, potential) }
	res, err := mobilegossip.Run(cfg)
	if err != nil {
		t.Fatalf("Run (workers %d): %v", cfg.EngineWorkers, err)
	}
	tr.res = res
	return tr
}

func sameWorkerTrace(t *testing.T, label string, got, want workerTrace) {
	t.Helper()
	if got.res != want.res {
		t.Fatalf("%s: result diverged:\n got %+v\nwant %+v", label, got.res, want.res)
	}
	if len(got.phi) != len(want.phi) {
		t.Fatalf("%s: %d potential samples, want %d", label, len(got.phi), len(want.phi))
	}
	for i := range got.phi {
		if got.phi[i] != want.phi[i] {
			t.Fatalf("%s: φ diverged at round %d: got %d want %d", label, i+1, got.phi[i], want.phi[i])
		}
	}
}

// TestEngineWorkersDeterministic runs the full session matrix — every
// algorithm on static, τ-dynamic, mobility and adversarial topologies —
// at 1, 2, 3 and 8 shard workers and requires identical results and
// identical per-round potential traces throughout. Heavy (the matrix
// runs 4×), so -short skips it; `make race-concurrent` races it
// un-shortened.
func TestEngineWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("4× full session matrix; raced un-shortened by make race-concurrent")
	}
	for _, cfg := range sessionMatrix() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			cfg.EngineWorkers = 1
			want := traceRun(t, cfg)
			for _, w := range []int{2, 3, 8} {
				cfg.EngineWorkers = w
				sameWorkerTrace(t, cfgName(cfg), traceRun(t, cfg), want)
			}
		})
	}
}

// shardedCheckpointConfigs is the cross-engine checkpoint grid: a static
// run, a mobility schedule, and an adaptive adversary, each big enough
// that 4 workers yield real (multi-node) shards.
func shardedCheckpointConfigs() []mobilegossip.Config {
	return []mobilegossip.Config{
		{Algorithm: mobilegossip.AlgSharedBit, N: 96, K: 8,
			Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}, Seed: 61},
		{Algorithm: mobilegossip.AlgSimSharedBit, N: 80, K: 6,
			Topology: mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: 0.03}, Tau: 1, Seed: 62},
		{Algorithm: mobilegossip.AlgSharedBit, N: 64, K: 6,
			Topology: mobilegossip.Topology{
				Kind: mobilegossip.RandomRegular, Degree: 4,
				Adversary: mobilegossip.AdvCutRich, AdvBudget: 20, AdvPeriod: 3,
			}, Tau: 1, Seed: 63},
	}
}

// TestShardedCheckpointInterchangeable checks the tentpole's checkpoint
// contract: a sequential and a 4-worker session write byte-identical
// checkpoints at the same round, and either checkpoint resumed under the
// other engine finishes byte-identically to the uninterrupted run.
func TestShardedCheckpointInterchangeable(t *testing.T) {
	for _, cfg := range shardedCheckpointConfigs() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			seq := cfg
			seq.EngineWorkers = 1
			want, err := mobilegossip.Run(seq)
			if err != nil {
				t.Fatal(err)
			}
			at := want.Rounds / 2

			snapshot := func(workers int) []byte {
				sim, err := mobilegossip.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				sim.SetEngineWorkers(workers)
				for i := 0; i < at; i++ {
					if _, err := sim.Step(); err != nil {
						t.Fatalf("workers %d step %d: %v", workers, i, err)
					}
				}
				var buf bytes.Buffer
				if err := sim.Checkpoint(&buf); err != nil {
					t.Fatalf("workers %d checkpoint: %v", workers, err)
				}
				return buf.Bytes()
			}
			ckptSeq := snapshot(1)
			ckptPar := snapshot(4)
			if !bytes.Equal(ckptSeq, ckptPar) {
				t.Fatal("sequential and 4-worker checkpoints of the same round differ")
			}

			// Cross-resume: each engine finishes the other's checkpoint.
			for _, cross := range []struct {
				name    string
				ckpt    []byte
				workers int
			}{
				{"parallel_ckpt_sequential_finish", ckptPar, 1},
				{"sequential_ckpt_parallel_finish", ckptSeq, 4},
			} {
				resumed, err := mobilegossip.Resume(bytes.NewReader(cross.ckpt))
				if err != nil {
					t.Fatalf("%s: Resume: %v", cross.name, err)
				}
				resumed.SetEngineWorkers(cross.workers)
				got, err := resumed.Run(context.Background())
				if err != nil {
					t.Fatalf("%s: Run: %v", cross.name, err)
				}
				if got != want {
					t.Fatalf("%s diverged:\n got %+v\nwant %+v", cross.name, got, want)
				}
			}
		})
	}
}

// TestRelabelDeterministic checks the cache-aware relabeling pass: each
// kind solves, is reproducible, reports itself in the topology name, and
// composes with τ-regeneration and with the shard-parallel engine
// (relabeled shards must still reduce to the workers=1 bytes).
func TestRelabelDeterministic(t *testing.T) {
	for _, kind := range []mobilegossip.RelabelKind{mobilegossip.RelabelBFS, mobilegossip.RelabelDegree} {
		for _, tau := range []int{0, 2} {
			cfg := mobilegossip.Config{
				Algorithm: mobilegossip.AlgSharedBit, N: 64, K: 8,
				Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4, Relabel: kind},
				Tau:      tau, Seed: 71, EngineWorkers: 1,
			}
			name := kind.String()
			want := traceRun(t, cfg)
			if !want.res.Solved {
				t.Fatalf("relabel %s tau %d: not solved in %d rounds", name, tau, want.res.Rounds)
			}
			if !strings.Contains(want.res.Topology, "+"+name) {
				t.Fatalf("relabel %s: topology name %q does not report the relabeling", name, want.res.Topology)
			}
			sameWorkerTrace(t, "relabel "+name+" rerun", traceRun(t, cfg), want)
			cfg.EngineWorkers = 4
			sameWorkerTrace(t, "relabel "+name+" sharded", traceRun(t, cfg), want)
		}
	}
}

// TestRelabelRejectsMobility: relabeling renumbers a generated graph, so
// the mobility kinds (whose node identity is positional) must refuse it.
func TestRelabelRejectsMobility(t *testing.T) {
	_, err := mobilegossip.New(mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 32, K: 4,
		Topology: mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: 0.03, Relabel: mobilegossip.RelabelBFS},
		Tau:      1, Seed: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "Relabel") {
		t.Fatalf("mobility + Relabel: err = %v, want a Relabel rejection", err)
	}
}

// TestRelabelCheckpointRoundTrip: Relabel is part of the topology spec and
// must survive the checkpoint stream (format v3) — a resumed relabeled run
// finishes identically to the uninterrupted one.
func TestRelabelCheckpointRoundTrip(t *testing.T) {
	cfg := mobilegossip.Config{
		Algorithm: mobilegossip.AlgSimSharedBit, N: 48, K: 6,
		Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4, Relabel: mobilegossip.RelabelBFS},
		Tau:      2, Seed: 72,
	}
	want, err := mobilegossip.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := mobilegossip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.Rounds/2; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := mobilegossip.Resume(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Config().Topology.Relabel; got != mobilegossip.RelabelBFS {
		t.Fatalf("resumed Relabel = %v, want bfs", got)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("relabeled resume diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestShardedAllStrategiesN10k drives the shard-parallel engine at
// n = 10 000 — real multi-thousand-node shards — across every algorithm
// and every adversary strategy, bounded to a fixed round budget, and
// requires the 7-worker trace to match the sequential engine round for
// round. `make race-concurrent` runs this un-shortened under -race, so
// the sharded goroutine structure is always raced at scale; the -short
// suites skip it.
func TestShardedAllStrategiesN10k(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10k × all strategies; raced un-shortened by make race-concurrent")
	}
	const n, k, rounds = 10000, 16, 12
	static := mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4}
	var cfgs []mobilegossip.Config
	for i, alg := range mobilegossip.Algorithms() {
		cfgs = append(cfgs, mobilegossip.Config{
			Algorithm: alg, N: n, K: k, Topology: static,
			MaxRounds: rounds, Seed: uint64(80 + i),
		})
	}
	for i, adv := range mobilegossip.AdversaryKinds() {
		cfgs = append(cfgs, mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit, N: n, K: k,
			Topology: mobilegossip.Topology{
				Kind: mobilegossip.RandomRegular, Degree: 4,
				Adversary: adv, AdvBudget: 500, AdvPeriod: 3,
			},
			Tau: 1, MaxRounds: rounds, Seed: uint64(90 + i),
		})
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			cfg.EngineWorkers = 1
			want := traceRun(t, cfg)
			cfg.EngineWorkers = 7
			sameWorkerTrace(t, cfgName(cfg), traceRun(t, cfg), want)
		})
	}
}
