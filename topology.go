package mobilegossip

import (
	"fmt"
	"math"
	"strings"

	"mobilegossip/internal/adversary"
	"mobilegossip/internal/dyngraph"
	"mobilegossip/internal/graph"
	"mobilegossip/internal/mobility"
	"mobilegossip/internal/prand"
)

// TopologyKind enumerates the built-in topology families.
type TopologyKind int

// Topology families. Each corresponds to a generator in internal/graph;
// DoubleStar is the paper's Ω(Δ²) lower-bound construction, RandomRegular
// its "well-connected" (constant-α) regime, Cycle its worst-α regime.
const (
	Cycle TopologyKind = iota + 1
	Path
	Complete
	Star
	DoubleStar
	Grid
	Hypercube
	GNP
	RandomRegular
	Barbell
	// RandomGeometric is RGG(n, r): uniform points in the unit square joined
	// within distance r — smartphone crowds with a fixed radio range. Scales
	// to millions of nodes (cell-grid construction).
	RandomGeometric
	// PreferentialAttachment is the Barabási–Albert contact-network model:
	// heavy-tailed degrees, connected by construction, O(n·m) build.
	PreferentialAttachment
	// MobileWaypoint through MobileCommuter are the mobility-driven
	// topologies (internal/mobility): phones move through the unit square
	// under a continuous-space motion model, and each round's topology is
	// their unit-disk proximity graph (connected by repair), changing every
	// Tau rounds via incremental edge deltas. Tau = 0 freezes the initial
	// placement. Parameterized by Radius, Speed, and the model-specific
	// knobs below.
	MobileWaypoint // random-waypoint walkers (Speed, Pause)
	MobileLevy     // Lévy flights: heavy-tailed excursions (Speed, LevyAlpha)
	MobileGroup    // gathering around moving attractors (Groups, Attract, Speed)
	MobileCommuter // home↔work schedules with churn bursts (Speed, Period)
)

var kindNames = map[TopologyKind]string{
	Cycle: "cycle", Path: "path", Complete: "complete", Star: "star",
	DoubleStar: "doublestar", Grid: "grid", Hypercube: "hypercube",
	GNP: "gnp", RandomRegular: "regular", Barbell: "barbell",
	RandomGeometric: "rgg", PreferentialAttachment: "pa",
	MobileWaypoint: "waypoint", MobileLevy: "levy",
	MobileGroup: "group", MobileCommuter: "commuter",
}

// TopologyKinds enumerates every built-in topology family, in declaration
// order (the static generators first, then the mobility models). CLIs and
// error messages use it so the list of valid names has a single source of
// truth.
func TopologyKinds() []TopologyKind {
	return []TopologyKind{
		Cycle, Path, Complete, Star, DoubleStar, Grid, Hypercube,
		GNP, RandomRegular, Barbell, RandomGeometric, PreferentialAttachment,
		MobileWaypoint, MobileLevy, MobileGroup, MobileCommuter,
	}
}

// TopologyKindNames returns the parseable names of TopologyKinds, in order.
func TopologyKindNames() []string {
	names := make([]string, 0, len(kindNames))
	for _, k := range TopologyKinds() {
		names = append(names, k.String())
	}
	return names
}

// String returns the family name.
func (k TopologyKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TopologyKind(%d)", int(k))
}

// ParseTopologyKind resolves a family name (as printed by String).
func ParseTopologyKind(s string) (TopologyKind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("mobilegossip: unknown topology %q (valid: %s)",
		s, strings.Join(TopologyKindNames(), ", "))
}

// RelabelKind selects an optional cache-aware vertex relabeling pass
// applied once at graph-construction time. Relabeling permutes node ids so
// adjacency scans touch nearby memory — which speeds up the round loop and
// tightens the shard balance of the parallel engine (Config.EngineWorkers)
// — at the price of changing which physical vertex each node id (and hence
// each per-node RNG stream and token) lands on: a relabeled run is a
// different, equally valid execution, deterministic in its own right.
type RelabelKind int

// Relabeling passes (see internal/graph BFSOrder and DegreeOrder).
const (
	// RelabelNone keeps the generator's natural labeling (the default).
	RelabelNone RelabelKind = iota
	// RelabelBFS numbers vertices in breadth-first order from vertex 0:
	// neighbors get nearby ids, so shards cut few edges and scans stay in
	// cache.
	RelabelBFS
	// RelabelDegree numbers vertices by descending degree: hub-heavy work
	// concentrates in the low shard instead of scattering.
	RelabelDegree
)

var relabelNames = map[RelabelKind]string{
	RelabelNone: "none", RelabelBFS: "bfs", RelabelDegree: "degree",
}

// RelabelKindNames returns the parseable relabeling names.
func RelabelKindNames() []string { return []string{"none", "bfs", "degree"} }

// String returns the relabeling pass name.
func (k RelabelKind) String() string {
	if s, ok := relabelNames[k]; ok {
		return s
	}
	return fmt.Sprintf("RelabelKind(%d)", int(k))
}

// ParseRelabelKind resolves a relabeling name (as printed by String).
func ParseRelabelKind(s string) (RelabelKind, error) {
	for k, name := range relabelNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("mobilegossip: unknown relabeling %q (valid: %s)",
		s, strings.Join(RelabelKindNames(), ", "))
}

// Topology specifies a topology family plus its family-specific knobs.
type Topology struct {
	Kind TopologyKind
	// Degree parameterizes RandomRegular (default 4).
	Degree int
	// P parameterizes GNP (default 2·ln(n)/n at build time if zero).
	P float64
	// Rows/Cols parameterize Grid (defaults make it near-square).
	Rows, Cols int
	// CliqueSize and PathLen parameterize Barbell.
	CliqueSize, PathLen int
	// Radius parameterizes RandomGeometric (default 1.5·√(ln n/(πn)), just
	// above the connectivity threshold) and the mobility kinds' radio range
	// (default mobility.DefaultRadius: mean degree ≈ 8).
	Radius float64
	// Attach parameterizes PreferentialAttachment: edges added per new
	// vertex (default 3).
	Attach int
	// Speed is the per-round motion step of the mobility kinds, as a
	// fraction of the unit square (default 0.01). 0 is a valid (frozen)
	// speed: set it negative to mean exactly zero.
	Speed float64
	// Pause is MobileWaypoint's dwell at each destination, in motion
	// epochs (default 2).
	Pause int
	// LevyAlpha is MobileLevy's Pareto tail exponent (default 1.6).
	LevyAlpha float64
	// Groups is MobileGroup's attractor count (default 4).
	Groups int
	// Attract is MobileGroup's gathering intensity in [0, 1] (default 0.6).
	// Negative means exactly zero.
	Attract float64
	// Period is MobileCommuter's commute cycle length in rounds
	// (default 64).
	Period int
	// Adversary layers an adversarial edge-cutting strategy (see
	// AdversaryKind) over the base topology — any Kind, including the
	// mobility models. The adversary perturbs the edge list at every epoch
	// boundary (per-round for Tau = 1, once-and-frozen for Tau = 0), with
	// connectivity repaired by relay bridges. AdvNone disables it.
	Adversary AdversaryKind
	// AdvBudget caps the edges the adversary may cut per epoch
	// (0 = unlimited).
	AdvBudget int
	// AdvParts is the partition count of AdvBridges groups and AdvBlackout
	// regions (default 4), and the k of AdvTopK (default 3).
	AdvParts int
	// AdvPeriod is the event cycle length, in epochs, of AdvBlackout and
	// AdvPartition (default 8).
	AdvPeriod int
	// Relabel applies a cache-aware vertex relabeling pass (see RelabelKind)
	// to every generated graph — the static one for Tau ≤ 0, each epoch's
	// for Tau ≥ 1. The mobility kinds reject it: their node ids are bound to
	// continuously moving entities.
	Relabel RelabelKind
}

// buildStatic instantiates the topology on n vertices.
func (t Topology) buildStatic(n int, rng *prand.RNG) (*graph.Graph, error) {
	switch t.Kind {
	case Cycle:
		return graph.Cycle(n), nil
	case Path:
		return graph.Path(n), nil
	case Complete:
		return graph.Complete(n), nil
	case Star:
		return graph.Star(n), nil
	case DoubleStar:
		return graph.DoubleStar(n), nil
	case Grid:
		rows, cols := t.Rows, t.Cols
		if rows <= 0 || cols <= 0 {
			// Most-square factorization: the largest divisor ≤ √n.
			rows = 1
			for r := 2; r*r <= n; r++ {
				if n%r == 0 {
					rows = r
				}
			}
			cols = n / rows
		}
		if rows*cols != n {
			return nil, fmt.Errorf("mobilegossip: grid %dx%d does not cover n=%d", rows, cols, n)
		}
		return graph.Grid(rows, cols), nil
	case Hypercube:
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		if 1<<uint(d) != n {
			return nil, fmt.Errorf("mobilegossip: hypercube needs n to be a power of two, got %d", n)
		}
		return graph.Hypercube(d), nil
	case GNP:
		p := t.P
		if p <= 0 {
			p = gnpDefaultP(n)
		}
		return graph.GNP(n, p, rng), nil
	case RandomRegular:
		d := t.Degree
		if d <= 0 {
			d = 4
		}
		return graph.RandomRegular(n, d, rng), nil
	case RandomGeometric:
		r := t.Radius
		if r <= 0 {
			r = rggDefaultRadius(n)
		}
		return graph.RandomGeometric(n, r, rng), nil
	case PreferentialAttachment:
		m := t.Attach
		if m <= 0 {
			m = 3
		}
		return graph.PreferentialAttachment(n, m, rng), nil
	case Barbell:
		m := t.CliqueSize
		pl := t.PathLen
		if m <= 0 {
			m = n / 2
		}
		if pl <= 0 {
			pl = n - 2*m + 1
		}
		g := graph.Barbell(m, pl)
		if g.N() != n {
			return nil, fmt.Errorf("mobilegossip: barbell(%d,%d) has %d vertices, want %d", m, pl, g.N(), n)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("mobilegossip: unknown topology kind %v", t.Kind)
	}
}

// rggDefaultRadius is 1.5·√(ln n/(πn)): slightly above the RGG
// connectivity threshold, keeping average degree ≈ 2.25·ln n.
func rggDefaultRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return 1.5 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
}

func gnpDefaultP(n int) float64 {
	if n < 2 {
		return 1
	}
	// 2·ln(n)/n: comfortably above the connectivity threshold.
	p := 2 * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	return p
}

// mobilityModel maps the mobility kinds onto their internal/mobility motion
// model, applying the documented defaults (0 → default, negative → zero for
// the float knobs so that "exactly zero" stays expressible).
func (t Topology) mobilityModel() (mobility.Model, bool) {
	speed := zeroableDefault(t.Speed, 0.01)
	switch t.Kind {
	case MobileWaypoint:
		pause := t.Pause
		if pause <= 0 {
			pause = 2
		}
		return mobility.Waypoint(speed, pause), true
	case MobileLevy:
		alpha := t.LevyAlpha
		if alpha <= 0 {
			alpha = 1.6
		}
		return mobility.Levy(speed, alpha), true
	case MobileGroup:
		g := t.Groups
		if g <= 0 {
			g = 4
		}
		return mobility.Group(g, zeroableDefault(t.Attract, 0.6), speed), true
	case MobileCommuter:
		period := t.Period
		if period <= 0 {
			period = 64
		}
		return mobility.Commuter(speed, period), true
	}
	return nil, false
}

// zeroableDefault resolves a float knob where 0 means "default" but the
// zero value itself must stay reachable: negative inputs mean exactly 0.
func zeroableDefault(v, def float64) float64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	default:
		return v
	}
}

// Build instantiates the dynamic schedule: tau <= 0 (or Static) yields a
// never-changing topology; tau >= 1 redraws the same family (over freshly
// permuted labels where the family is deterministic) every tau rounds —
// the harshest oblivious adversary the stability factor permits. The
// mobility kinds instead move a crowd continuously and change the topology
// by edge deltas (dyngraph.DeltaDynamic); for them tau <= 0 freezes the
// initial placement.
//
// When Topology.Adversary is set, the built schedule is wrapped in an
// internal/adversary engine that perturbs every epoch's edge list under
// the strategy (for tau <= 0: perturbs the initial topology once and
// freezes it).
func (t Topology) Build(n, tau int, seed uint64) (dyngraph.Dynamic, error) {
	base, err := t.buildSchedule(n, tau, seed)
	if err != nil || t.Adversary == AdvNone {
		return base, err
	}
	if t.AdvBudget < 0 {
		// The engine treats budget <= 0 as unlimited; a negative value is
		// therefore always a caller mistake and must not silently select
		// the maximally destructive adversary.
		return nil, fmt.Errorf("mobilegossip: AdvBudget %d is negative (0 means unlimited)", t.AdvBudget)
	}
	strat, err := t.strategy()
	if err != nil {
		return nil, err
	}
	return adversary.New(base, strat, adversary.Options{
		Tau:    tau,
		Seed:   prand.Mix64(seed ^ 0x30644e72e131a029),
		Budget: t.AdvBudget,
	}), nil
}

// buildSchedule is Build without the adversary layer.
func (t Topology) buildSchedule(n, tau int, seed uint64) (dyngraph.Dynamic, error) {
	if m, ok := t.mobilityModel(); ok {
		if t.Relabel != RelabelNone {
			return nil, fmt.Errorf("mobilegossip: Relabel %s requires a generated topology, not the mobility kind %s",
				t.Relabel, t.Kind)
		}
		return mobility.New(m, mobility.Options{
			N: n, Tau: tau, Radius: t.Radius, Seed: seed,
		}), nil
	}
	rng := prand.New(prand.Mix64(seed ^ 0xa24baed4963ee407))
	if tau <= 0 {
		g, err := t.buildStatic(n, rng)
		if err != nil {
			return nil, err
		}
		if !g.Connected() {
			return nil, fmt.Errorf("mobilegossip: %s on n=%d is disconnected", t.Kind, n)
		}
		return dyngraph.NewStatic(orderRelabel(g, t.Relabel)), nil
	}
	// Validate the family once so Build fails fast.
	if _, err := t.buildStatic(n, rng); err != nil {
		return nil, err
	}
	spec := t // copy for the closure
	gen := func(_ int, erng *prand.RNG) *graph.Graph {
		g, err := spec.buildStatic(n, erng)
		if err != nil {
			// Cannot happen: validated above with identical inputs except
			// the RNG, and no generator fails RNG-dependently.
			panic(err)
		}
		// The random permutation supplies the per-epoch label churn; the
		// optional ordering pass then restores locality over the churned
		// graph (BFS roots at whatever vertex the permutation labeled 0,
		// so the churn survives relabeling).
		return orderRelabel(relabel(g, erng), spec.Relabel)
	}
	name := t.Kind.String()
	if t.Relabel != RelabelNone {
		name += "+" + t.Relabel.String()
	}
	return dyngraph.NewRegen(n, tau, seed, name, gen), nil
}

// orderRelabel applies the configured cache-aware relabeling pass.
func orderRelabel(g *graph.Graph, kind RelabelKind) *graph.Graph {
	switch kind {
	case RelabelBFS:
		return g.Relabel(graph.BFSOrder(g), g.Name()+"+bfs")
	case RelabelDegree:
		return g.Relabel(graph.DegreeOrder(g), g.Name()+"+degree")
	default:
		return g
	}
}

// relabel permutes vertex labels so deterministic families still churn.
// Graph.Relabel rebuilds the CSR arrays in place of the old
// Edges-and-rebuild round trip (same result, no per-edge overhead).
func relabel(g *graph.Graph, rng *prand.RNG) *graph.Graph {
	perm := rng.Perm(g.N())
	return g.Relabel(perm, g.Name()+"+perm")
}
