package mobilegossip_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"mobilegossip"
)

func sweepPoints() []mobilegossip.Config {
	var pts []mobilegossip.Config
	for _, n := range []int{16, 24, 32} {
		pts = append(pts, mobilegossip.Config{
			Algorithm: mobilegossip.AlgSharedBit, N: n, K: 4,
			Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 4},
			Tau:      1,
		})
	}
	return pts
}

// TestRunSweepDeterministicAcrossWorkers: RunSweep's central contract —
// the same SweepConfig yields identical results at every worker count.
func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	var want mobilegossip.SweepResult
	for i, workers := range []int{1, 4, 16} {
		got, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{
			Points: sweepPoints(), Trials: 3, Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got.Points, want.Points) {
			t.Fatalf("workers=%d produced different results than workers=1", workers)
		}
	}
	for p, pt := range want.Points {
		if pt.Solved != len(pt.Runs) {
			t.Errorf("point %d: %d/%d solved", p, pt.Solved, len(pt.Runs))
		}
		if pt.MinRounds > pt.MaxRounds || pt.MeanRounds <= 0 {
			t.Errorf("point %d: bad aggregate %+v", p, pt)
		}
	}
}

// TestRunSweepCellReproducibleViaRun: every sweep cell can be replayed as a
// single Run at the seed SweepSeed exposes.
func TestRunSweepCellReproducibleViaRun(t *testing.T) {
	const trials = 2
	sr, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{
		Points: sweepPoints(), Trials: trials, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, pt := range sr.Points {
		for tr, got := range pt.Runs {
			cfg := sweepPoints()[p]
			cfg.Seed = mobilegossip.SweepSeed(99, p*trials+tr)
			want, err := mobilegossip.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("point %d trial %d: sweep %+v != direct run %+v", p, tr, got, want)
			}
		}
	}
}

func TestRunSweepValidation(t *testing.T) {
	if _, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{}); err == nil {
		t.Fatal("empty sweep should error")
	}
	_, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{
		Points: []mobilegossip.Config{{Algorithm: mobilegossip.AlgSharedBit, N: 1, K: 1}},
	})
	if err == nil {
		t.Fatal("invalid point config should propagate Run's validation error")
	}
}

func TestRunSweepProgress(t *testing.T) {
	var mu sync.Mutex
	last, calls := 0, 0
	sr, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{
		Points: sweepPoints()[:2], Trials: 2, Seed: 3, Workers: 2,
		OnProgress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			last = done
			if total != 4 {
				t.Errorf("total = %d, want 4", total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || last != 4 {
		t.Errorf("progress: %d calls, last done=%d, want 4/4", calls, last)
	}
	if len(sr.Points) != 2 {
		t.Errorf("points = %d, want 2", len(sr.Points))
	}
}

// TestSweepWriteJSON checks the BENCH-shaped document round-trips and
// carries the per-point aggregates.
func TestSweepWriteJSON(t *testing.T) {
	sr, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{
		Points: sweepPoints(), Trials: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Seed    uint64 `json:"seed"`
		Workers int    `json:"workers"`
		Points  []struct {
			Algorithm  string  `json:"algorithm"`
			N          int     `json:"n"`
			K          int     `json:"k"`
			Tau        int     `json:"tau"`
			Trials     int     `json:"trials"`
			Solved     int     `json:"solved"`
			MeanRounds float64 `json:"mean_rounds"`
		} `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if doc.Schema != mobilegossip.SweepSchemaV2 {
		t.Errorf("schema = %q, want %q", doc.Schema, mobilegossip.SweepSchemaV2)
	}
	if doc.Seed != 5 {
		t.Errorf("seed = %d, want the sweep base seed 5", doc.Seed)
	}
	if doc.Workers < 1 {
		t.Errorf("workers = %d", doc.Workers)
	}
	if len(doc.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(doc.Points))
	}
	for i, p := range doc.Points {
		if p.Algorithm != "sharedbit" || p.Trials != 2 || p.Solved != 2 || p.MeanRounds <= 0 {
			t.Errorf("point %d malformed: %+v", i, p)
		}
		if p.N != []int{16, 24, 32}[i] || p.K != 4 || p.Tau != 1 {
			t.Errorf("point %d config fields wrong: %+v", i, p)
		}
	}
}

// TestSweepJSONMobilityChurn checks the v2 document carries the mobility
// churn the v1 rows dropped.
func TestSweepJSONMobilityChurn(t *testing.T) {
	sr, err := mobilegossip.RunSweep(mobilegossip.SweepConfig{
		Points: []mobilegossip.Config{{
			Algorithm: mobilegossip.AlgSharedBit, N: 48, K: 4,
			Topology: mobilegossip.Topology{Kind: mobilegossip.MobileWaypoint, Speed: 0.03},
			Tau:      1,
		}},
		Trials: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Points[0].MeanEdgesAdded <= 0 || sr.Points[0].MeanEdgesRemoved <= 0 {
		t.Fatalf("mobility sweep measured no churn: %+v", sr.Points[0])
	}
	var buf bytes.Buffer
	if err := sr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Points []struct {
			EdgesAdded   float64 `json:"edges_added"`
			EdgesRemoved float64 `json:"edges_removed"`
		} `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Points[0].EdgesAdded != sr.Points[0].MeanEdgesAdded ||
		doc.Points[0].EdgesRemoved != sr.Points[0].MeanEdgesRemoved {
		t.Fatalf("JSON churn %+v does not match aggregates %+v", doc.Points[0], sr.Points[0])
	}
}
