package mobilegossip_test

// Integration tests for the profiling layer at the session surface:
// round_profile events, the determinism contract (profiling on vs off),
// live /metrics scrapes against a profiled parallel session, and the
// resume path (DESIGN.md §13).

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"

	"mobilegossip"
)

func profiledConfig(seed uint64, workers int) mobilegossip.Config {
	return mobilegossip.Config{
		Algorithm: mobilegossip.AlgSharedBit, N: 128, K: 16,
		Topology: mobilegossip.Topology{Kind: mobilegossip.RandomRegular, Degree: 6},
		Tau:      1, Seed: seed,
		Profile:       true,
		EngineWorkers: workers,
	}
}

func TestProfiledSessionEvents(t *testing.T) {
	ring, res := collectRun(t, profiledConfig(11, 1))
	profs := ring.Events(mobilegossip.EventFilter{
		Types: []mobilegossip.EventType{mobilegossip.EventRoundProfile},
	})
	if len(profs) != res.Rounds {
		t.Fatalf("%d round_profile events, want one per round (%d)", len(profs), res.Rounds)
	}
	for i, ev := range profs {
		if ev.Round != i+1 {
			t.Fatalf("round_profile %d has round %d", i, ev.Round)
		}
		if ev.RoundNanos <= 0 {
			t.Fatalf("round %d: non-positive round_ns %d", ev.Round, ev.RoundNanos)
		}
		if ev.Workers != 1 {
			t.Fatalf("round %d: workers %d, want 1", ev.Round, ev.Workers)
		}
		if ev.ReductionNanos != 0 || ev.ImbalanceMilli != 0 || ev.BarrierNanos != 0 {
			t.Fatalf("round %d: sequential round carries shard data: %+v", ev.Round, ev)
		}
		if _, err := mobilegossip.ParseSessionHealth(ev.Health); err != nil {
			t.Fatalf("round %d: bad health %q", ev.Round, ev.Health)
		}
	}
	// A solved short run converges throughout.
	if h := profs[len(profs)-1].Health; res.Solved && h != "converging" {
		t.Fatalf("final health %q on a solved run, want converging", h)
	}

	// Each round_profile follows its round_completed.
	evs := ring.Events(mobilegossip.EventFilter{})
	for i, ev := range evs {
		if ev.Type != mobilegossip.EventRoundProfile {
			continue
		}
		if i == 0 || evs[i-1].Type != mobilegossip.EventRoundCompleted || evs[i-1].Round != ev.Round {
			t.Fatalf("round_profile %d not preceded by its round_completed", ev.Round)
		}
	}
}

// TestProfiledRunIdenticalResults is the session-level read-only
// contract: identical Result and potential trajectory with profiling on
// vs off, sequential and sharded.
func TestProfiledRunIdenticalResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := profiledConfig(23, workers)
		cfg.Profile = false
		ringOff, resOff := collectRun(t, cfg)
		cfg.Profile = true
		ringOn, resOn := collectRun(t, cfg)
		if resOff != resOn {
			t.Fatalf("workers=%d: results diverged:\noff %+v\non  %+v", workers, resOff, resOn)
		}
		f := mobilegossip.EventFilter{Types: []mobilegossip.EventType{mobilegossip.EventRoundCompleted}}
		off, on := ringOff.Events(f), ringOn.Events(f)
		if len(off) != len(on) {
			t.Fatalf("workers=%d: %d vs %d rounds", workers, len(off), len(on))
		}
		for i := range off {
			if off[i] != on[i] {
				t.Fatalf("workers=%d round %d diverged:\noff %+v\non  %+v", workers, i+1, off[i], on[i])
			}
		}
	}
}

// TestProfiledCheckpointBytesIdentical pins the strongest compatibility
// claim: the checkpoint stream is byte-identical whether or not the
// writing session is profiled, so profiled and unprofiled runs produce
// interchangeable checkpoints.
func TestProfiledCheckpointBytesIdentical(t *testing.T) {
	step := func(profileOn bool) []byte {
		cfg := profiledConfig(31, 2)
		cfg.Profile = profileOn
		sim, err := mobilegossip.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := sim.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(step(false), step(true)) {
		t.Fatal("checkpoint bytes differ with profiling on vs off")
	}
}

func TestProfiledResumeViaEnableProfiling(t *testing.T) {
	sim, err := mobilegossip.New(profiledConfig(41, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ckpt := buf.Bytes()
	// checkpoint_written carried a measured write time on the profiled
	// session, and the recorder kept it too.
	if sim.Profiler() == nil || sim.Profiler().CheckpointWrite().Count() != 1 {
		t.Fatal("profiled Checkpoint not recorded in the write histogram")
	}

	// Profile is deliberately not serialized: the revived session starts
	// unprofiled and EnableProfiling re-attaches the sidecar mid-run.
	revived, err := mobilegossip.Resume(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if revived.Profiler() != nil || revived.Config().Profile {
		t.Fatal("Profile leaked through the checkpoint")
	}
	if revived.Health() != mobilegossip.HealthUnknown {
		t.Fatalf("unprofiled health = %v, want unknown", revived.Health())
	}
	revived.EnableProfiling()
	if _, err := revived.Step(); err != nil {
		t.Fatal(err)
	}
	if revived.Profiler().Rounds() != 1 {
		t.Fatalf("revived recorder saw %d rounds, want 1", revived.Profiler().Rounds())
	}
	if revived.Health() == mobilegossip.HealthUnknown {
		t.Fatal("health still unknown after a profiled round")
	}
}

// TestProfiledMetricsScrapeConcurrent runs a profiled EngineWorkers > 1
// session while goroutines hammer the MetricsCollector exposition — the
// live-scrape path the race-concurrent CI pass pins.
func TestProfiledMetricsScrapeConcurrent(t *testing.T) {
	sim, err := mobilegossip.New(profiledConfig(53, 4))
	if err != nil {
		t.Fatal(err)
	}
	col := mobilegossip.NewMetricsCollector()
	col.Attach(sim.Bus())

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := col.WriteTo(io.Discard); err != nil {
						t.Error(err)
						return
					}
					sim.Profiler().RoundLatency().Quantile(0.99)
					_ = sim.Health().String()
				}
			}
		}()
	}
	res, err := sim.Run(context.Background())
	close(stop)
	scrapers.Wait()
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if _, err := col.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mobilegossip_round_latency_seconds_bucket",
		"mobilegossip_phase_proposal_seconds_sum",
		"mobilegossip_shard_imbalance_ratio_count",
		"mobilegossip_session_health{state=",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("final exposition missing %s", want)
		}
	}
	if col.Health() == mobilegossip.HealthUnknown {
		t.Error("collector health unknown after a profiled run")
	}
	_ = res
}
