package mobilegossip

import "mobilegossip/internal/profile"

// The profiling surface, re-exported from internal/profile so library
// callers can name what Simulation.Profiler and Simulation.Health hand
// out. The implementation — log-bucketed histograms, the per-round
// timing record, the stall detector — and the overhead contract live in
// internal/profile; the architecture is DESIGN.md §13. Enable with
// Config.Profile or Simulation.EnableProfiling.
type (
	// Profiler aggregates per-round timing into histograms; one is
	// attached to each profiled session.
	Profiler = profile.Recorder
	// ProfileHistogram is a lock-free log-bucketed latency histogram.
	ProfileHistogram = profile.Histogram
	// RoundProfile is the timing record of one executed round.
	RoundProfile = profile.RoundProfile
	// ProfilePhase identifies one timed segment of an engine round.
	ProfilePhase = profile.Phase
	// SessionHealth is the stall detector's convergence verdict.
	SessionHealth = profile.Health
)

// The engine's timed round phases, in execution order.
const (
	PhaseChurn     = profile.PhaseChurn
	PhaseProposal  = profile.PhaseProposal
	PhaseExchange  = profile.PhaseExchange
	PhaseReduction = profile.PhaseReduction
)

// The session health states (see SessionHealth).
const (
	HealthUnknown    = profile.HealthUnknown
	HealthConverging = profile.HealthConverging
	HealthPlateaued  = profile.HealthPlateaued
	HealthStalled    = profile.HealthStalled
)

// ProfilePhases enumerates the engine's timed round phases in execution
// order.
func ProfilePhases() []ProfilePhase { return profile.Phases() }

// ParseSessionHealth resolves a health wire name ("converging", ...) to
// its SessionHealth.
func ParseSessionHealth(s string) (SessionHealth, error) { return profile.ParseHealth(s) }
